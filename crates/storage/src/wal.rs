//! `TRUSSLOG` — the durable delta log (write-ahead log) beside a v2
//! snapshot.
//!
//! The serving layer persists updates by appending them here *before*
//! acknowledging: append → fsync → ack. The in-memory index absorbs the
//! delta via the incremental `apply`; the on-disk snapshot stays at its
//! base generation until a background compaction folds log + snapshot
//! into a fresh v2 file and resets the log. Recovery is: open snapshot,
//! scan log, replay the surviving suffix. `docs/FORMATS.md` documents
//! the byte layout normatively; the summary:
//!
//! ```text
//! header  (40 bytes):
//!   magic "TRUSSLOG" | version u32 | flags u32
//!   | base_generation u64 | base_checksum u64
//!   | fnv1a64 over bytes [0,32) u64
//! record  (21 + len bytes):
//!   len u32 (payload bytes) | seq u64 | kind u8
//!   | payload | fnv1a64 over (len‖seq‖kind‖payload) u64
//! ```
//!
//! Record kinds: `1` = **Delta** (payload: `n_insert u32 | n_remove u32`
//! followed by `(u,v)` u32 pairs, inserts then removals), `2` =
//! **Compact** (payload: the new snapshot's container checksum, u64) —
//! the *compact-intent* record a compaction appends (and fsyncs) before
//! renaming the new snapshot into place, which is what makes the
//! snapshot swap + log reset crash-safe without multi-file atomicity.
//!
//! `base_generation`/`base_checksum` tie the log to one exact snapshot:
//! a Delta with sequence number `s` produces generation `s`, so the
//! first record of a fresh log carries `base_generation + 1` and every
//! subsequent Delta increments by exactly one. Gaps or reordering are
//! mid-file corruption, not a torn tail.
//!
//! ## Torn tail vs corruption
//!
//! A crash mid-append legitimately leaves a truncated final record —
//! the scanner detects it, the recovery path chops it off, and serving
//! continues (those bytes were never acknowledged, losing them is
//! correct). Anything else — a bad checksum *followed by more data*, an
//! unknown record kind, a sequence gap, an undecodable payload — is
//! evidence the file was damaged in place, and the reader returns a
//! typed [`WalError::Corrupt`] so the daemon refuses to serve rather
//! than silently dropping acknowledged updates.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use truss_graph::{Edge, EdgeDelta};

use crate::atomic::{atomic_replace, fsync_dir};
use crate::fault;
use crate::snapshot::{fnv1a64, Fnv1a64};

/// File magic, first 8 bytes.
pub const WAL_MAGIC: &[u8; 8] = b"TRUSSLOG";
/// Format version this build reads and writes.
pub const WAL_VERSION: u32 = 1;
/// Header size in bytes.
pub const WAL_HEADER_BYTES: u64 = 40;
/// Frame overhead per record: len u32 + seq u64 + kind u8 + checksum u64.
pub const RECORD_OVERHEAD: u64 = 4 + 8 + 1 + 8;
/// Largest accepted payload — a delta batch of ~8M edges. A len field
/// above this is not a size, it's damage.
pub const MAX_RECORD_PAYLOAD: u32 = 64 << 20;

const KIND_DELTA: u8 = 1;
const KIND_COMPACT: u8 = 2;

/// Errors from the log layer.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Mid-file damage: the log cannot be trusted, refuse to serve.
    Corrupt {
        /// Byte offset of the damaged record.
        offset: u64,
        /// What failed to validate.
        reason: String,
    },
    /// The snapshot on disk matches neither the log's base checksum nor
    /// any compact-intent record — the pair is not from one lineage.
    SnapshotMismatch {
        /// The log header's base snapshot checksum.
        base_checksum: u64,
        /// The checksum of the snapshot actually on disk.
        disk_checksum: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt { offset, reason } => {
                write!(f, "wal corrupt at offset {offset}: {reason}")
            }
            WalError::SnapshotMismatch {
                base_checksum,
                disk_checksum,
            } => write!(
                f,
                "wal does not belong to this snapshot: log base checksum \
                 {base_checksum:016x}, snapshot checksum {disk_checksum:016x}, \
                 and no compact record bridges them"
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// The log header: which snapshot this log's deltas apply on top of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalHeader {
    /// Generation number of the base snapshot.
    pub base_generation: u64,
    /// v2 container checksum of the base snapshot.
    pub base_checksum: u64,
}

impl WalHeader {
    fn encode(&self) -> [u8; WAL_HEADER_BYTES as usize] {
        let mut buf = [0u8; WAL_HEADER_BYTES as usize];
        buf[0..8].copy_from_slice(WAL_MAGIC);
        buf[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
        // bytes 12..16: flags, zero.
        buf[16..24].copy_from_slice(&self.base_generation.to_le_bytes());
        buf[24..32].copy_from_slice(&self.base_checksum.to_le_bytes());
        let sum = fnv1a64(&buf[0..32]);
        buf[32..40].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    fn decode(buf: &[u8; WAL_HEADER_BYTES as usize]) -> Result<Self, WalError> {
        if &buf[0..8] != WAL_MAGIC {
            return Err(WalError::Corrupt {
                offset: 0,
                reason: "bad magic (not a TRUSSLOG file)".into(),
            });
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version != WAL_VERSION {
            return Err(WalError::Corrupt {
                offset: 8,
                reason: format!("unsupported wal version {version} (expected {WAL_VERSION})"),
            });
        }
        let sum = u64::from_le_bytes(buf[32..40].try_into().unwrap());
        if sum != fnv1a64(&buf[0..32]) {
            return Err(WalError::Corrupt {
                offset: 32,
                reason: "header checksum mismatch".into(),
            });
        }
        Ok(WalHeader {
            base_generation: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
            base_checksum: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
        })
    }
}

/// A decoded record payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalPayload {
    /// One acknowledged update batch; applying it to generation `seq-1`
    /// produces generation `seq`.
    Delta(EdgeDelta),
    /// Compact intent: a snapshot with this container checksum was (or
    /// was about to be) renamed over the base. Appended and fsync'd
    /// *before* the rename.
    Compact {
        /// Container checksum of the compacted snapshot.
        checksum: u64,
    },
}

/// One validated record from a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Sequence number: the generation a Delta produces, or the
    /// generation a Compact was taken at.
    pub seq: u64,
    /// Byte offset of the record's frame in the file.
    pub offset: u64,
    /// The decoded payload.
    pub payload: WalPayload,
}

/// Result of scanning a log file: every validated record plus where the
/// valid prefix ends.
#[derive(Debug)]
pub struct WalScan {
    /// The validated header.
    pub header: WalHeader,
    /// All records in the valid prefix, in file order.
    pub records: Vec<WalRecord>,
    /// Length of the valid prefix; bytes past this are a torn tail.
    pub valid_len: u64,
    /// Total file length as scanned.
    pub file_len: u64,
}

impl WalScan {
    /// Bytes of torn tail after the valid prefix.
    pub fn torn_bytes(&self) -> u64 {
        self.file_len - self.valid_len
    }
}

fn encode_delta_payload(delta: &EdgeDelta) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + 8 * delta.len());
    buf.extend_from_slice(&(delta.insert.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(delta.remove.len() as u32).to_le_bytes());
    for e in delta.insert.iter().chain(delta.remove.iter()) {
        buf.extend_from_slice(&e.u.to_le_bytes());
        buf.extend_from_slice(&e.v.to_le_bytes());
    }
    buf
}

fn decode_delta_payload(offset: u64, payload: &[u8]) -> Result<EdgeDelta, WalError> {
    let corrupt = |reason: String| WalError::Corrupt { offset, reason };
    if payload.len() < 8 {
        return Err(corrupt(format!(
            "delta payload too short: {} bytes",
            payload.len()
        )));
    }
    let ni = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
    let nr = u32::from_le_bytes(payload[4..8].try_into().unwrap()) as usize;
    let want = 8 + 8 * (ni + nr);
    if payload.len() != want {
        return Err(corrupt(format!(
            "delta payload length {} does not match {ni} inserts + {nr} removals (want {want})",
            payload.len()
        )));
    }
    let mut at = 8;
    let mut read_edges = |n: usize| -> Result<Vec<Edge>, WalError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let u = u32::from_le_bytes(payload[at..at + 4].try_into().unwrap());
            let v = u32::from_le_bytes(payload[at + 4..at + 8].try_into().unwrap());
            at += 8;
            if u == v {
                return Err(WalError::Corrupt {
                    offset,
                    reason: format!("delta contains self-loop {u}-{v}"),
                });
            }
            out.push(Edge::new(u, v));
        }
        Ok(out)
    };
    let insert = read_edges(ni)?;
    let remove = read_edges(nr)?;
    Ok(EdgeDelta { insert, remove })
}

fn encode_record(seq: u64, kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(RECORD_OVERHEAD as usize + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(payload);
    let sum = fnv1a64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Counters the writer accumulates; surfaced through the daemon's
/// `status` opcode and the ingestion bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended this session.
    pub records_appended: u64,
    /// Bytes appended this session (frames, not payloads).
    pub bytes_appended: u64,
    /// `fsync` calls on the log file this session.
    pub fsyncs: u64,
}

/// The fsync-disciplined appender. The durability contract callers rely
/// on: a record is durable only after a [`sync`](WalWriter::sync) that
/// returned `Ok` *after* the append — ack nothing before that point.
///
/// Once any fsync or append fails, the writer is **poisoned**: every
/// subsequent call fails fast. An fsync error means the kernel may have
/// dropped dirty pages silently (the "fsyncgate" semantics), so retrying
/// on the same fd could ack data that never hit the platter. The daemon
/// keeps serving reads and rejects writes until restarted.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    header: WalHeader,
    next_seq: u64,
    stats: WalStats,
    poisoned: bool,
}

impl WalWriter {
    /// Creates a fresh log for a snapshot with identity
    /// `(base_generation, base_checksum)`, replacing any file at `path`.
    /// The header is durable (file + parent dir fsync'd) on return.
    pub fn create(
        path: &Path,
        base_generation: u64,
        base_checksum: u64,
    ) -> Result<WalWriter, WalError> {
        let header = WalHeader {
            base_generation,
            base_checksum,
        };
        fault::hit("wal-create")?;
        let mut file = File::create(path)?;
        file.write_all(&header.encode())?;
        file.sync_all()?;
        if let Some(parent) = parent_of(path) {
            fsync_dir(parent)?;
        }
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            header,
            next_seq: base_generation + 1,
            stats: WalStats::default(),
            poisoned: false,
        })
    }

    /// Opens an existing log for appending after recovery. `scan` must
    /// come from [`scan_wal`] on the same file, and any torn tail must
    /// already be truncated ([`truncate_torn_tail`]); appends continue
    /// at `next_generation + 1`.
    pub fn open_after_recovery(
        path: &Path,
        scan: &WalScan,
        next_generation: u64,
    ) -> Result<WalWriter, WalError> {
        let file = OpenOptions::new().append(true).open(path)?;
        let len = file.metadata()?.len();
        if len != scan.valid_len {
            return Err(WalError::Corrupt {
                offset: scan.valid_len,
                reason: format!(
                    "log is {len} bytes but the validated prefix is {} — truncate the torn \
                     tail before reopening",
                    scan.valid_len
                ),
            });
        }
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            header: scan.header,
            next_seq: next_generation + 1,
            stats: WalStats::default(),
            poisoned: false,
        })
    }

    /// The base identity this log extends.
    pub fn header(&self) -> WalHeader {
        self.header
    }

    /// Session counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The sequence number the next appended delta will carry (= the
    /// generation it will produce).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// True once a failed append/fsync has made the writer unusable.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn check_poison(&self) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "wal writer poisoned by an earlier i/o failure; restart to recover",
            ));
        }
        Ok(())
    }

    fn append_frame(&mut self, site: &str, frame: &[u8]) -> io::Result<()> {
        self.check_poison()?;
        let r = (|| -> io::Result<()> {
            match fault::short_write_len(site, frame.len())? {
                None => self.file.write_all(frame),
                Some(k) => {
                    // Manufacture a torn tail: push the prefix into the
                    // OS (page cache survives an abort; only power loss
                    // would lose it) and die.
                    self.file.write_all(&frame[..k])?;
                    let _ = self.file.flush();
                    fault::abort_after_short(site);
                }
            }
        })();
        if r.is_err() {
            self.poisoned = true;
        } else {
            self.stats.records_appended += 1;
            self.stats.bytes_appended += frame.len() as u64;
        }
        r
    }

    /// Appends one delta record and returns the sequence number it was
    /// assigned (= the generation applying it produces). **Not durable
    /// until the next [`sync`](WalWriter::sync)** — that is the point:
    /// group commit appends a batch, syncs once, then acks the batch.
    pub fn append_delta(&mut self, delta: &EdgeDelta) -> io::Result<u64> {
        let seq = self.next_seq;
        let frame = encode_record(seq, KIND_DELTA, &encode_delta_payload(delta));
        self.append_frame("wal-append", &frame)?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Appends a compact-intent record: "a snapshot with `new_checksum`
    /// is about to be renamed over the base". Must be appended *and
    /// synced* before the rename; `generation` is the generation the
    /// compacted snapshot captures.
    pub fn append_compact(&mut self, generation: u64, new_checksum: u64) -> io::Result<()> {
        let frame = encode_record(generation, KIND_COMPACT, &new_checksum.to_le_bytes());
        self.append_frame("wal-compact-append", &frame)
    }

    /// Makes everything appended so far durable. One successful sync
    /// covers all appends before it — the group-commit primitive.
    pub fn sync(&mut self) -> io::Result<()> {
        self.check_poison()?;
        let r = fault::hit("wal-fsync").and_then(|()| self.file.sync_all());
        if r.is_err() {
            self.poisoned = true;
        } else {
            self.stats.fsyncs += 1;
        }
        r
    }

    /// Bytes currently in the log file (header + all appended frames).
    pub fn log_len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// Atomically resets the log to a fresh header for the compacted
    /// snapshot `(base_generation, base_checksum)` — the final step of
    /// a compaction. Goes through [`atomic_replace`] (prefix
    /// `wal-reset`), so a crash anywhere leaves either the old log
    /// (with its compact-intent record) or the fresh one, never a
    /// truncated mix.
    pub fn reset(&mut self, base_generation: u64, base_checksum: u64) -> Result<(), WalError> {
        self.reset_with(base_generation, base_checksum, &[])
    }

    /// Like [`reset`](WalWriter::reset), but the fresh log also carries
    /// `tail` — delta records that are already acknowledged but not yet
    /// folded into the new base. Recovery uses this to finish an
    /// interrupted compaction (the disk snapshot matched a
    /// compact-intent record) without dropping the suffix deltas that
    /// followed it in the old log. `tail` sequence numbers must run
    /// `base_generation + 1, +2, ...` in order.
    pub fn reset_with(
        &mut self,
        base_generation: u64,
        base_checksum: u64,
        tail: &[(u64, EdgeDelta)],
    ) -> Result<(), WalError> {
        self.check_poison()?;
        let header = WalHeader {
            base_generation,
            base_checksum,
        };
        for (i, (seq, _)) in tail.iter().enumerate() {
            debug_assert_eq!(*seq, base_generation + 1 + i as u64);
        }
        let r = atomic_replace(&self.path, "wal-reset", |w| {
            w.write_all(&header.encode())?;
            for (seq, delta) in tail {
                w.write_all(&encode_record(
                    *seq,
                    KIND_DELTA,
                    &encode_delta_payload(delta),
                ))?;
            }
            Ok(())
        });
        if r.is_err() {
            self.poisoned = true;
            r?;
        }
        // The old fd points at the unlinked inode; reopen the new file.
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.header = header;
        self.next_seq = base_generation + 1 + tail.len() as u64;
        Ok(())
    }
}

fn parent_of(path: &Path) -> Option<&Path> {
    match path.parent() {
        Some(p) if p.as_os_str().is_empty() => Some(Path::new(".")),
        other => other,
    }
}

/// Scans a log file: validates the header and every record, classifies
/// where the valid prefix ends. A torn tail is *reported*, not an
/// error; mid-file damage is [`WalError::Corrupt`].
pub fn scan_wal(path: &Path) -> Result<WalScan, WalError> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut bytes = Vec::with_capacity(file_len as usize);
    file.read_to_end(&mut bytes)?;
    scan_wal_bytes(&bytes)
}

fn scan_wal_bytes(bytes: &[u8]) -> Result<WalScan, WalError> {
    let file_len = bytes.len() as u64;
    if file_len < WAL_HEADER_BYTES {
        // Even the header is incomplete: a crash during `create` before
        // its fsync completed. Nothing was ever acknowledged against
        // this log, so it is corrupt-as-a-file but carries no data;
        // callers treat header-level corruption as refuse-to-serve.
        return Err(WalError::Corrupt {
            offset: 0,
            reason: format!(
                "file is {file_len} bytes, shorter than the {WAL_HEADER_BYTES}-byte header"
            ),
        });
    }
    let header = WalHeader::decode(bytes[0..WAL_HEADER_BYTES as usize].try_into().unwrap())?;

    let mut records = Vec::new();
    let mut at = WAL_HEADER_BYTES;
    // The generation the log has reached so far; deltas must extend it
    // by exactly one.
    let mut generation = header.base_generation;
    loop {
        let remaining = file_len - at;
        if remaining == 0 {
            break;
        }
        // Frame prefix: len u32 + seq u64 + kind u8.
        if remaining < 13 {
            break; // torn: not even a frame prefix
        }
        let a = at as usize;
        let len = u32::from_le_bytes(bytes[a..a + 4].try_into().unwrap());
        let seq = u64::from_le_bytes(bytes[a + 4..a + 12].try_into().unwrap());
        let kind = bytes[a + 12];
        if len > MAX_RECORD_PAYLOAD {
            return Err(WalError::Corrupt {
                offset: at,
                reason: format!(
                    "record payload length {len} exceeds the {MAX_RECORD_PAYLOAD}-byte cap"
                ),
            });
        }
        let frame_len = RECORD_OVERHEAD + len as u64;
        if remaining < frame_len {
            break; // torn: the record ends past EOF
        }
        let payload = &bytes[a + 13..a + 13 + len as usize];
        let stored = u64::from_le_bytes(
            bytes[a + 13 + len as usize..a + frame_len as usize]
                .try_into()
                .unwrap(),
        );
        let computed = fnv1a64(&bytes[a..a + 13 + len as usize]);
        if stored != computed {
            if at + frame_len == file_len {
                break; // torn: the final record's bytes never all landed
            }
            // Damage with valid-looking data after it: this was not a
            // crash mid-append.
            return Err(WalError::Corrupt {
                offset: at,
                reason: format!(
                    "record checksum mismatch (stored {stored:016x}, computed {computed:016x}) \
                     with {} more bytes after it",
                    file_len - at - frame_len
                ),
            });
        }
        let payload = match kind {
            KIND_DELTA => {
                if seq != generation + 1 {
                    return Err(WalError::Corrupt {
                        offset: at,
                        reason: format!(
                            "delta sequence {seq} does not extend generation {generation}"
                        ),
                    });
                }
                generation = seq;
                WalPayload::Delta(decode_delta_payload(at, payload)?)
            }
            KIND_COMPACT => {
                if payload.len() != 8 {
                    return Err(WalError::Corrupt {
                        offset: at,
                        reason: format!("compact payload is {} bytes, want 8", payload.len()),
                    });
                }
                if seq != generation {
                    return Err(WalError::Corrupt {
                        offset: at,
                        reason: format!(
                            "compact record at sequence {seq} but the log is at generation \
                             {generation}"
                        ),
                    });
                }
                WalPayload::Compact {
                    checksum: u64::from_le_bytes(payload.try_into().unwrap()),
                }
            }
            other => {
                return Err(WalError::Corrupt {
                    offset: at,
                    reason: format!("unknown record kind {other}"),
                });
            }
        };
        records.push(WalRecord {
            seq,
            offset: at,
            payload,
        });
        at += frame_len;
    }

    Ok(WalScan {
        header,
        records,
        valid_len: at,
        file_len,
    })
}

/// Chops a torn tail off the log (no-op when there is none) and makes
/// the truncation durable.
pub fn truncate_torn_tail(path: &Path, scan: &WalScan) -> io::Result<()> {
    if scan.torn_bytes() == 0 {
        return Ok(());
    }
    fault::hit("wal-truncate")?;
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(scan.valid_len)?;
    file.sync_all()?;
    Ok(())
}

/// The replay plan recovery produces: which deltas to apply over the
/// snapshot that is actually on disk, and what the result is.
#[derive(Debug)]
pub struct Recovery {
    /// `(seq, delta)` in order; applying them over the disk snapshot
    /// reproduces every acknowledged update.
    pub replay: Vec<(u64, EdgeDelta)>,
    /// Generation after replay.
    pub generation: u64,
    /// Torn bytes the caller should truncate before appending.
    pub bytes_truncated: u64,
    /// True when the disk snapshot is a *compacted* one (matched via a
    /// compact-intent record): the interrupted compaction must be
    /// finished — reset the log — before serving resumes.
    pub reset_needed: bool,
}

/// Matches a scanned log against the snapshot found on disk and plans
/// the replay.
///
/// Three outcomes:
/// * the snapshot is the log's **base** → replay every delta record;
/// * the snapshot matches a **compact-intent** record → an interrupted
///   compaction committed its rename; deltas at or before that record
///   are already folded in, replay only the suffix (and reset the log);
/// * neither → [`WalError::SnapshotMismatch`], refuse to serve.
pub fn plan_recovery(scan: &WalScan, disk_checksum: u64) -> Result<Recovery, WalError> {
    let bytes_truncated = scan.torn_bytes();

    // Prefer the *latest* matching identity: scan compact records from
    // the back. If the disk snapshot equals the base AND a compact
    // record (possible when every logged delta was a no-op), the compact
    // match replays less, and replay over the folded snapshot is
    // idempotent either way.
    let compact_match = scan.records.iter().rposition(
        |r| matches!(r.payload, WalPayload::Compact { checksum } if checksum == disk_checksum),
    );

    let (start, mut generation, reset_needed) = match compact_match {
        Some(i) => (i + 1, scan.records[i].seq, true),
        None if disk_checksum == scan.header.base_checksum => {
            (0, scan.header.base_generation, false)
        }
        None => {
            return Err(WalError::SnapshotMismatch {
                base_checksum: scan.header.base_checksum,
                disk_checksum,
            });
        }
    };

    let mut replay = Vec::new();
    for rec in scan.records.iter().skip(start) {
        if let WalPayload::Delta(delta) = &rec.payload {
            generation = rec.seq;
            replay.push((rec.seq, delta.clone()));
        }
    }

    Ok(Recovery {
        replay,
        generation,
        bytes_truncated,
        reset_needed,
    })
}

/// Streaming checksum adapter: wraps a writer, folds every byte into an
/// FNV-1a 64. Lets compaction checksum the snapshot it writes without a
/// second read pass.
pub struct HashingWriter<W> {
    inner: W,
    hash: Fnv1a64,
}

impl<W: Write> HashingWriter<W> {
    /// Wraps `inner`.
    pub fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            hash: Fnv1a64::new(),
        }
    }

    /// The hash of everything written so far.
    pub fn finish(&self) -> u64 {
        self.hash.finish()
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;

    fn delta(ins: &[(u32, u32)], rem: &[(u32, u32)]) -> EdgeDelta {
        EdgeDelta {
            insert: ins.iter().map(|&(u, v)| Edge::new(u, v)).collect(),
            remove: rem.iter().map(|&(u, v)| Edge::new(u, v)).collect(),
        }
    }

    fn write_log(path: &Path, base: (u64, u64), deltas: &[EdgeDelta]) -> WalWriter {
        let mut w = WalWriter::create(path, base.0, base.1).unwrap();
        for d in deltas {
            w.append_delta(d).unwrap();
        }
        w.sync().unwrap();
        w
    }

    #[test]
    fn round_trips_records() {
        let dir = ScratchDir::new().unwrap();
        let path = dir.path().join("t.wal");
        let d1 = delta(&[(1, 2), (2, 3)], &[]);
        let d2 = delta(&[(4, 5)], &[(1, 2)]);
        let w = write_log(&path, (7, 0xabcd), &[d1.clone(), d2.clone()]);
        assert_eq!(w.stats().records_appended, 2);
        assert_eq!(w.stats().fsyncs, 1);
        assert_eq!(w.next_seq(), 10);

        let scan = scan_wal(&path).unwrap();
        assert_eq!(
            scan.header,
            WalHeader {
                base_generation: 7,
                base_checksum: 0xabcd
            }
        );
        assert_eq!(scan.torn_bytes(), 0);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].seq, 8);
        assert_eq!(scan.records[0].payload, WalPayload::Delta(d1));
        assert_eq!(scan.records[1].seq, 9);
        assert_eq!(scan.records[1].payload, WalPayload::Delta(d2));
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let dir = ScratchDir::new().unwrap();
        let path = dir.path().join("t.wal");
        let d1 = delta(&[(1, 2)], &[]);
        write_log(&path, (0, 1), std::slice::from_ref(&d1));
        let whole = std::fs::metadata(&path).unwrap().len();

        // Append a second record, then tear it at every possible length.
        let frame = encode_record(2, KIND_DELTA, &encode_delta_payload(&delta(&[(3, 4)], &[])));
        for cut in 1..frame.len() {
            let mut bytes = std::fs::read(&path).unwrap();
            bytes.truncate(whole as usize);
            bytes.extend_from_slice(&frame[..cut]);
            std::fs::write(&path, &bytes).unwrap();

            let scan = scan_wal(&path).unwrap();
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, whole, "cut at {cut}");
            assert_eq!(scan.torn_bytes(), cut as u64, "cut at {cut}");

            truncate_torn_tail(&path, &scan).unwrap();
            assert_eq!(std::fs::metadata(&path).unwrap().len(), whole);
            let rescan = scan_wal(&path).unwrap();
            assert_eq!(rescan.torn_bytes(), 0);
            assert_eq!(rescan.records.len(), 1);
        }
    }

    #[test]
    fn mid_file_damage_is_corruption_not_torn() {
        let dir = ScratchDir::new().unwrap();
        let path = dir.path().join("t.wal");
        write_log(
            &path,
            (0, 1),
            &[delta(&[(1, 2)], &[]), delta(&[(3, 4)], &[])],
        );
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the FIRST record (offset 40 is its
        // frame; payload starts at 40+13).
        bytes[40 + 13] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        match scan_wal(&path) {
            Err(WalError::Corrupt { offset: 40, reason }) => {
                assert!(reason.contains("checksum mismatch"), "{reason}");
            }
            other => panic!("want Corrupt at 40, got {other:?}"),
        }

        // The same flip on the LAST record is a torn tail.
        write_log(
            &path,
            (0, 1),
            &[delta(&[(1, 2)], &[]), delta(&[(3, 4)], &[])],
        );
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 5;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_bytes() > 0);
    }

    #[test]
    fn sequence_gap_is_corruption() {
        let dir = ScratchDir::new().unwrap();
        let path = dir.path().join("t.wal");
        let mut w = WalWriter::create(&path, 0, 1).unwrap();
        w.append_delta(&delta(&[(1, 2)], &[])).unwrap();
        w.sync().unwrap();
        // Hand-append a record that skips a generation.
        let frame = encode_record(5, KIND_DELTA, &encode_delta_payload(&delta(&[(3, 4)], &[])));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&frame);
        std::fs::write(&path, &bytes).unwrap();
        match scan_wal(&path) {
            Err(WalError::Corrupt { reason, .. }) => {
                assert!(reason.contains("does not extend"), "{reason}");
            }
            other => panic!("want Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn recovery_replays_everything_over_the_base() {
        let dir = ScratchDir::new().unwrap();
        let path = dir.path().join("t.wal");
        let d1 = delta(&[(1, 2)], &[]);
        let d2 = delta(&[(3, 4)], &[]);
        write_log(&path, (3, 0xbeef), &[d1.clone(), d2.clone()]);
        let scan = scan_wal(&path).unwrap();
        let rec = plan_recovery(&scan, 0xbeef).unwrap();
        assert_eq!(rec.generation, 5);
        assert!(!rec.reset_needed);
        assert_eq!(rec.replay, vec![(4, d1), (5, d2)]);
    }

    #[test]
    fn recovery_resumes_an_interrupted_compaction() {
        let dir = ScratchDir::new().unwrap();
        let path = dir.path().join("t.wal");
        let d1 = delta(&[(1, 2)], &[]);
        let d2 = delta(&[(3, 4)], &[]);
        let mut w = write_log(&path, (0, 0x111), std::slice::from_ref(&d1));
        // Compaction at generation 1 produced a snapshot with checksum
        // 0x222, appended its intent, renamed... then crashed before the
        // log reset. One more delta never happened; simulate the
        // crash-after-rename by just not resetting.
        w.append_compact(1, 0x222).unwrap();
        w.append_delta(&d2).unwrap();
        w.sync().unwrap();

        // Disk snapshot is the NEW one.
        let scan = scan_wal(&path).unwrap();
        let rec = plan_recovery(&scan, 0x222).unwrap();
        assert_eq!(rec.generation, 2);
        assert!(rec.reset_needed);
        assert_eq!(rec.replay, vec![(2, d2.clone())]);

        // Disk snapshot is still the OLD one (crash before rename):
        // replay everything, compact intent is ignored.
        let scan = scan_wal(&path).unwrap();
        let rec = plan_recovery(&scan, 0x111).unwrap();
        assert_eq!(rec.generation, 2);
        assert!(!rec.reset_needed);
        assert_eq!(rec.replay, vec![(1, d1), (2, d2)]);

        // Disk snapshot is from another lineage entirely: refuse.
        let scan = scan_wal(&path).unwrap();
        match plan_recovery(&scan, 0x999) {
            Err(WalError::SnapshotMismatch { .. }) => {}
            other => panic!("want SnapshotMismatch, got {other:?}"),
        }
    }

    #[test]
    fn reset_starts_a_fresh_log() {
        let dir = ScratchDir::new().unwrap();
        let path = dir.path().join("t.wal");
        let mut w = write_log(&path, (0, 0x111), &[delta(&[(1, 2)], &[])]);
        w.append_compact(1, 0x222).unwrap();
        w.sync().unwrap();
        w.reset(1, 0x222).unwrap();
        assert_eq!(w.next_seq(), 2);
        let seq = w.append_delta(&delta(&[(5, 6)], &[])).unwrap();
        assert_eq!(seq, 2);
        w.sync().unwrap();

        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.header.base_generation, 1);
        assert_eq!(scan.header.base_checksum, 0x222);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].seq, 2);
    }

    #[test]
    fn poisoned_writer_fails_fast_after_fsync_eio() {
        let dir = ScratchDir::new().unwrap();
        let path = dir.path().join("t.wal");
        let mut w = WalWriter::create(&path, 0, 1).unwrap();
        w.append_delta(&delta(&[(1, 2)], &[])).unwrap();
        {
            let _scope = fault::scoped("wal-fsync=eio");
            assert!(w.sync().is_err());
        }
        assert!(w.is_poisoned());
        let err = w.append_delta(&delta(&[(3, 4)], &[])).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        assert!(w.sync().is_err());
    }

    #[test]
    fn open_after_recovery_continues_the_sequence() {
        let dir = ScratchDir::new().unwrap();
        let path = dir.path().join("t.wal");
        write_log(
            &path,
            (0, 1),
            &[delta(&[(1, 2)], &[]), delta(&[(3, 4)], &[])],
        );
        let scan = scan_wal(&path).unwrap();
        let mut w = WalWriter::open_after_recovery(&path, &scan, 2).unwrap();
        assert_eq!(w.append_delta(&delta(&[(5, 6)], &[])).unwrap(), 3);
        w.sync().unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[2].seq, 3);
    }

    #[test]
    fn hashing_writer_matches_whole_slice_hash() {
        let mut out = Vec::new();
        let mut hw = HashingWriter::new(&mut out);
        hw.write_all(b"hello ").unwrap();
        hw.write_all(b"world").unwrap();
        let h = hw.finish();
        assert_eq!(h, fnv1a64(b"hello world"));
        assert_eq!(out, b"hello world");
    }

    #[test]
    fn empty_log_recovers_to_base() {
        let dir = ScratchDir::new().unwrap();
        let path = dir.path().join("t.wal");
        WalWriter::create(&path, 9, 0x42).unwrap();
        let scan = scan_wal(&path).unwrap();
        let rec = plan_recovery(&scan, 0x42).unwrap();
        assert_eq!(rec.generation, 9);
        assert!(rec.replay.is_empty());
        assert!(!rec.reset_needed);
    }
}

//! Budgeted advice windows over mapped byte ranges.
//!
//! The out-of-core engine wants `EngineConfig::memory_budget` to be a
//! *real* bound on resident memory, not an accounting fiction. A mapped
//! `TRUSSGR2` snapshot ([`crate::snapshot`]) pages in lazily, but pages a
//! scan faults in stay resident until the kernel is under pressure — so a
//! full pass over a section leaves the whole section in RSS. [`Window`]
//! makes residency explicit: callers declare the byte ranges they are
//! about to touch ([`Window::need`], `madvise(MADV_WILLNEED)`) and release
//! them when a shard of work is done ([`Window::release`] /
//! [`Window::release_all`], `MADV_DONTNEED`), while an accountant tracks
//! the page-rounded resident total against a budget and evicts the
//! oldest window when a new one would exceed it.
//!
//! Advice is only ever issued for ranges inside a live file mapping
//! (`mapped = true` at construction — `MADV_DONTNEED` on anonymous heap
//! memory would *zero it*, so the heap/buffered fallback runs the same
//! accounting with the syscalls elided). That emulation keeps the budget
//! enforceable — and unit-testable — on every platform: the resident
//! counter, high-water mark and eviction order behave identically whether
//! the advice reaches a kernel or not.

use std::collections::VecDeque;

/// Advice granularity: ranges are rounded out to 4 KiB boundaries (the
/// kernel ignores advice on partial pages; on larger-page systems the
/// syscall fails harmlessly and the accounting still holds).
pub const PAGE_BYTES: usize = 4096;

/// What one stray demand fault really maps: the kernel's fault-around
/// installs PTEs for every already-cached page in a cluster this large
/// around the faulting address (`/sys/kernel/mm/fault_around_bytes`,
/// default 64 KiB), and `MADV_RANDOM` does not suppress it — it only
/// stops the *disk* readahead. Stray-read accounting must charge at this
/// granularity or real residency outruns the accountant ~16x between
/// flushes.
pub const FAULT_CLUSTER_BYTES: usize = 64 * 1024;

/// One active advised range: `[addr, addr + len)`, page-rounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Span {
    addr: usize,
    len: usize,
}

impl Span {
    /// Page-rounds an arbitrary byte range outward.
    fn around(ptr: usize, len: usize) -> Span {
        let start = ptr - ptr % PAGE_BYTES;
        let end = (ptr + len).next_multiple_of(PAGE_BYTES);
        Span {
            addr: start,
            len: end - start,
        }
    }
}

/// Counters a [`Window`] accumulates over its lifetime (surfaced by the
/// out-of-core engine's report and asserted by tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Total bytes ever advised in (page-rounded).
    pub advised_bytes: u64,
    /// Total bytes advised out (page-rounded), evictions included.
    pub released_bytes: u64,
    /// Windows evicted to make room under the budget.
    pub evictions: u64,
    /// `need` calls whose single range exceeded the whole budget (the
    /// range is still admitted — a row must be readable — but the
    /// overshoot is visible).
    pub oversized_windows: u64,
}

/// A budgeted set of advised ranges over one logical backing.
///
/// FIFO eviction: windows are released oldest-first when a new `need`
/// would push the resident total past the budget — shard-at-a-time
/// access patterns touch ranges in rotation, so the oldest window is the
/// one least likely to be re-read.
#[derive(Debug)]
pub struct Window {
    budget: usize,
    mapped: bool,
    active: VecDeque<Span>,
    pinned: Vec<Span>,
    resident: usize,
    high_water: usize,
    stats: WindowStats,
}

impl Window {
    /// A window set enforcing `budget` bytes of advised residency.
    /// `mapped` gates the actual syscalls: pass the backing's
    /// `is_mapped()` — heap-resident backings get pure accounting.
    pub fn new(budget: usize, mapped: bool) -> Window {
        Window {
            budget: budget.max(PAGE_BYTES),
            mapped: mapped && cfg!(target_os = "linux"),
            active: VecDeque::new(),
            pinned: Vec::new(),
            resident: 0,
            high_water: 0,
            stats: WindowStats::default(),
        }
    }

    /// The enforced budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Disables kernel readahead over `bytes` (`MADV_RANDOM`). Without
    /// this, every demand fault on a mapped section pulls a ~128 KiB
    /// readahead cluster, so even a handful of scattered reads (binary
    /// searches, foreign-row probes) silently blanket the section with
    /// resident pages no release ever covers. Residency-governed callers
    /// mark their backing sections random once up front; `need` still
    /// prefetches declared windows explicitly via `MADV_WILLNEED`.
    /// Accounting-only (unmapped) windows ignore this.
    pub fn mark_random<T>(&self, bytes: &[T]) {
        let len = std::mem::size_of_val(bytes);
        if len == 0 {
            return;
        }
        self.advise_mode(Span::around(bytes.as_ptr() as usize, len));
    }

    /// Declares that `bytes` is about to be read: advises the page-rounded
    /// range in (`MADV_WILLNEED`), evicting the oldest windows first if the
    /// resident total would exceed the budget.
    pub fn need<T>(&mut self, bytes: &[T]) {
        let len = std::mem::size_of_val(bytes);
        if len == 0 {
            return;
        }
        let span = Span::around(bytes.as_ptr() as usize, len);
        if self.active.contains(&span) || self.pinned.contains(&span) {
            return; // idempotent re-declare of a live window
        }
        if span.len > self.budget {
            self.stats.oversized_windows += 1;
        }
        while self.resident + span.len > self.budget && !self.active.is_empty() {
            self.evict_oldest();
        }
        self.advise_in(span);
        self.active.push_back(span);
        self.resident += span.len;
        self.high_water = self.high_water.max(self.resident);
    }

    /// Declares a range that must stay resident for the window's whole
    /// lifetime (e.g. the offsets section, consulted on every row
    /// access). Pinned spans are charged against the budget but never
    /// evicted and never swept by [`Window::release_section`]; only
    /// [`Window::release_all`] drops them.
    pub fn pin<T>(&mut self, bytes: &[T]) {
        let len = std::mem::size_of_val(bytes);
        if len == 0 {
            return;
        }
        let span = Span::around(bytes.as_ptr() as usize, len);
        if self.pinned.contains(&span) {
            return;
        }
        self.advise_in(span);
        self.pinned.push(span);
        self.resident += span.len;
        self.high_water = self.high_water.max(self.resident);
    }

    /// Charges `len` bytes of untracked residency (stray demand-paged
    /// reads outside any declared window — e.g. random foreign-row probes
    /// during the peel). The caller polls [`Window::over_budget`] and
    /// flushes with [`Window::release_section`] when the estimate runs
    /// over; the charge is conservative (shared pages double-count).
    pub fn note(&mut self, len: usize) {
        self.resident += len;
        self.high_water = self.high_water.max(self.resident);
    }

    /// [`Window::note`] for a slice, charged at fault-around granularity
    /// ([`FAULT_CLUSTER_BYTES`]): a stray read of a 40-byte row faults
    /// one page, and the kernel's fault-around then maps every cached
    /// neighbor page in the surrounding cluster. Charging raw byte
    /// lengths (or even single pages) undercounts what the fault really
    /// made resident and lets RSS blow past the budget between flushes.
    pub fn note_span<T>(&mut self, bytes: &[T]) {
        let len = std::mem::size_of_val(bytes);
        if len == 0 {
            return;
        }
        let ptr = bytes.as_ptr() as usize;
        let start = ptr - ptr % FAULT_CLUSTER_BYTES;
        let end = (ptr + len).next_multiple_of(FAULT_CLUSTER_BYTES);
        self.note(end - start);
    }

    /// True when the tracked residency (windows + noted strays) exceeds
    /// the budget.
    pub fn over_budget(&self) -> bool {
        self.resident > self.budget
    }

    /// Releases one declared window (`MADV_DONTNEED` its page-rounded
    /// range). Unknown ranges are a no-op.
    pub fn release<T>(&mut self, bytes: &[T]) {
        let len = std::mem::size_of_val(bytes);
        if len == 0 {
            return;
        }
        let span = Span::around(bytes.as_ptr() as usize, len);
        if let Some(at) = self.active.iter().position(|&s| s == span) {
            self.active.remove(at);
            self.resident -= span.len;
            self.advise_out(span);
        }
    }

    /// Releases every declared window — pins included — and zeroes the
    /// stray-residency charge.
    pub fn release_all(&mut self) {
        while let Some(span) = self.active.pop_front() {
            self.advise_out(span);
        }
        for span in std::mem::take(&mut self.pinned) {
            self.advise_out(span);
        }
        self.resident = 0;
    }

    /// Drops an entire backing section from residency (`MADV_DONTNEED`
    /// over the whole range) — the bulk reset the peel uses after random
    /// foreign-row probes have scattered pages outside any window. Also
    /// forgets any declared windows inside the section and zeroes the
    /// stray charge, so callers re-`need` their shard afterwards. Pinned
    /// spans keep their charge (callers must not flush a section they
    /// pinned — pinned pages would refault on next access).
    pub fn release_section<T>(&mut self, section: &[T]) {
        let len = std::mem::size_of_val(section);
        if len == 0 {
            return;
        }
        let span = Span::around(section.as_ptr() as usize, len);
        self.active
            .retain(|s| s.addr >= span.addr + span.len || s.addr + s.len <= span.addr);
        self.resident = self.active.iter().map(|s| s.len).sum::<usize>()
            + self.pinned.iter().map(|s| s.len).sum::<usize>();
        self.advise_out(span);
    }

    /// Splits the unpinned remainder of this window's budget into `parts`
    /// equal sub-accountants, one per concurrent worker. Each sub-window
    /// starts empty and enforces its share independently, so the *sum* of
    /// what the workers keep resident stays under this window's budget:
    /// `parts × ((budget − pinned) / parts) + pinned ≤ budget`. The
    /// parent's pinned spans stay charged here (they are shared by every
    /// worker, not duplicated). Fold the sub-windows back with
    /// [`Window::absorb`] at the fork-join barrier.
    ///
    /// Sub-budgets are floored at one page — [`Window::new`] does the same
    /// — so a pathologically small parent budget degrades to page-sized
    /// sub-windows rather than zero; the floor can nominally overshoot the
    /// parent budget only when `budget / parts` is below a page, where the
    /// budget was never enforceable to begin with.
    pub fn partition(&self, parts: usize) -> Vec<Window> {
        let parts = parts.max(1);
        let pinned: usize = self.pinned.iter().map(|s| s.len).sum();
        let each = self.budget.saturating_sub(pinned) / parts;
        (0..parts).map(|_| Window::new(each, self.mapped)).collect()
    }

    /// Folds sub-windows from [`Window::partition`] back into this one at
    /// a fork-join barrier: lifetime stats are summed, and the high-water
    /// mark is raised conservatively to `resident + Σ sub high-waters` —
    /// the workers ran concurrently, so the worst case is every sub-window
    /// at its own peak at once. Any span a worker left declared is
    /// released here (workers are expected to have drained their windows
    /// before the barrier; the release makes the accounting — and the
    /// kernel advice — correct even if one did not).
    pub fn absorb(&mut self, parts: Vec<Window>) {
        let mut concurrent_peak = 0usize;
        for mut p in parts {
            p.release_all();
            concurrent_peak += p.high_water;
            self.stats.advised_bytes += p.stats.advised_bytes;
            self.stats.released_bytes += p.stats.released_bytes;
            self.stats.evictions += p.stats.evictions;
            self.stats.oversized_windows += p.stats.oversized_windows;
        }
        self.high_water = self.high_water.max(self.resident + concurrent_peak);
    }

    /// Bytes currently accounted resident (declared windows plus noted
    /// strays).
    pub fn resident_bytes(&self) -> usize {
        self.resident
    }

    /// The largest resident total ever accounted.
    pub fn high_water_bytes(&self) -> usize {
        self.high_water
    }

    /// Lifetime counters.
    pub fn stats(&self) -> WindowStats {
        self.stats
    }

    /// Streams `data` through the window in `chunk_bytes`-sized pieces:
    /// each chunk is advised in, handed to `f(first_index, chunk)`, and
    /// advised back out — a `scan(N)` whose resident footprint is one
    /// chunk. This is how the external engines read GR2 sections instead
    /// of re-parsing scratch records.
    pub fn for_chunks<T, F>(&mut self, data: &[T], chunk_bytes: usize, mut f: F)
    where
        F: FnMut(usize, &[T]),
    {
        let elem = std::mem::size_of::<T>().max(1);
        let per = (chunk_bytes / elem).max(1);
        let mut at = 0usize;
        while at < data.len() {
            let end = (at + per).min(data.len());
            let chunk = &data[at..end];
            self.need(chunk);
            f(at, chunk);
            self.release(chunk);
            at = end;
        }
    }

    fn evict_oldest(&mut self) {
        if let Some(span) = self.active.pop_front() {
            self.resident = self.resident.saturating_sub(span.len);
            self.stats.evictions += 1;
            self.advise_out(span);
        }
    }

    fn advise_in(&mut self, span: Span) {
        self.stats.advised_bytes += span.len as u64;
        self.advise(span, true);
    }

    fn advise_out(&mut self, span: Span) {
        self.stats.released_bytes += span.len as u64;
        self.advise(span, false);
    }

    #[cfg(target_os = "linux")]
    fn advise_mode(&self, span: Span) {
        if !self.mapped {
            return;
        }
        unsafe {
            crate::mmap::sys::madvise(
                span.addr as *mut std::os::raw::c_void,
                span.len,
                crate::mmap::sys::MADV_RANDOM,
            );
        }
    }

    #[cfg(not(target_os = "linux"))]
    fn advise_mode(&self, _span: Span) {}

    #[cfg(target_os = "linux")]
    fn advise(&self, span: Span, need: bool) {
        if !self.mapped {
            return;
        }
        let advice = if need {
            crate::mmap::sys::MADV_WILLNEED
        } else {
            crate::mmap::sys::MADV_DONTNEED
        };
        // Advice is a hint: a failure (foreign page size, unmapped hole)
        // costs correctness nothing, so the result is deliberately
        // ignored.
        unsafe {
            crate::mmap::sys::madvise(span.addr as *mut std::os::raw::c_void, span.len, advice);
        }
    }

    #[cfg(not(target_os = "linux"))]
    fn advise(&self, _span: Span, _need: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_tracks_pages_not_bytes() {
        let data = vec![0u8; 3 * PAGE_BYTES];
        let mut w = Window::new(1 << 20, false);
        w.need(&data[10..20]); // straddles one page (maybe two)
        assert!(w.resident_bytes() >= PAGE_BYTES);
        assert!(w.resident_bytes() <= 2 * PAGE_BYTES);
        assert!(w.resident_bytes().is_multiple_of(PAGE_BYTES));
        w.release(&data[10..20]);
        assert_eq!(w.resident_bytes(), 0);
        assert!(w.high_water_bytes() >= PAGE_BYTES);
    }

    #[test]
    fn eviction_is_fifo_and_respects_budget() {
        let data = vec![0u8; 64 * PAGE_BYTES];
        let mut w = Window::new(4 * PAGE_BYTES, false);
        for i in 0..8 {
            w.need(&data[i * 8 * PAGE_BYTES..i * 8 * PAGE_BYTES + PAGE_BYTES]);
            assert!(w.resident_bytes() <= w.budget(), "window {i}");
        }
        // Unaligned slices round to one or two pages each, so the exact
        // count depends on the Vec's base address; the invariants do not.
        assert!(w.stats().evictions >= 4);
        assert!(w.resident_bytes() <= 4 * PAGE_BYTES);
        assert!(w.resident_bytes() > 0);
        w.release_all();
        assert_eq!(w.resident_bytes(), 0);
    }

    #[test]
    fn oversized_windows_are_admitted_and_counted() {
        let data = vec![0u8; 16 * PAGE_BYTES];
        let mut w = Window::new(PAGE_BYTES, false);
        w.need(&data[..]);
        assert_eq!(w.stats().oversized_windows, 1);
        assert!(w.resident_bytes() >= data.len());
        w.release_all();
        assert_eq!(w.resident_bytes(), 0);
    }

    #[test]
    fn strays_and_section_flush() {
        let data = vec![0u64; PAGE_BYTES];
        let mut w = Window::new(4 * PAGE_BYTES, false);
        w.need(&data[..128]);
        w.note(8 * PAGE_BYTES);
        assert!(w.over_budget());
        w.release_section(&data[..]);
        assert_eq!(w.resident_bytes(), 0);
        assert!(!w.over_budget());
        // Windows outside the flushed section survive. The probe slice
        // sits in the interior of its allocation so page-rounding cannot
        // make it overlap `data`'s section span.
        let other = vec![0u8; 6 * PAGE_BYTES];
        w.need(&data[..128]);
        w.need(&other[2 * PAGE_BYTES..3 * PAGE_BYTES]);
        w.release_section(&data[..]);
        assert!(w.resident_bytes() >= PAGE_BYTES);
        assert!(w.resident_bytes() <= 2 * PAGE_BYTES);
    }

    #[test]
    fn for_chunks_visits_everything_in_order_within_budget() {
        let data: Vec<u32> = (0..100_000u32).collect();
        let mut w = Window::new(8 * PAGE_BYTES, false);
        let mut seen = Vec::new();
        w.for_chunks(&data, 2 * PAGE_BYTES, |base, chunk| {
            seen.push((base, chunk.len()));
        });
        let total: usize = seen.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, data.len());
        assert!(seen.windows(2).all(|p| p[0].0 + p[0].1 == p[1].0));
        assert_eq!(w.resident_bytes(), 0);
        assert!(w.high_water_bytes() <= 2 * PAGE_BYTES + 2 * PAGE_BYTES);
    }

    #[test]
    fn need_is_idempotent_for_live_windows() {
        let data = vec![0u8; 8 * PAGE_BYTES];
        let mut w = Window::new(16 * PAGE_BYTES, false);
        w.need(&data[..PAGE_BYTES]);
        let r = w.resident_bytes();
        w.need(&data[..PAGE_BYTES]);
        assert_eq!(w.resident_bytes(), r);
        // Re-declaring an *older* window (another need in between) is
        // also a no-op — the peel re-needs its shard after every flush.
        w.need(&data[4 * PAGE_BYTES..5 * PAGE_BYTES]);
        let r = w.resident_bytes();
        w.need(&data[..PAGE_BYTES]);
        assert_eq!(w.resident_bytes(), r);
    }

    #[test]
    fn pins_survive_eviction_and_section_flush() {
        let data = vec![0u8; 64 * PAGE_BYTES];
        let other = vec![0u8; 6 * PAGE_BYTES];
        let mut w = Window::new(4 * PAGE_BYTES, false);
        w.pin(&other[2 * PAGE_BYTES..3 * PAGE_BYTES]);
        let pinned = w.resident_bytes();
        assert!(pinned >= PAGE_BYTES);
        // Enough churn to evict everything evictable several times over.
        for i in 0..8 {
            w.need(&data[i * 8 * PAGE_BYTES..i * 8 * PAGE_BYTES + PAGE_BYTES]);
        }
        assert!(w.resident_bytes() >= pinned);
        // A bulk flush of `data`'s section leaves the pin charged.
        w.release_section(&data[..]);
        assert_eq!(w.resident_bytes(), pinned);
        // Pinning the same range twice is a no-op.
        w.pin(&other[2 * PAGE_BYTES..3 * PAGE_BYTES]);
        assert_eq!(w.resident_bytes(), pinned);
        w.release_all();
        assert_eq!(w.resident_bytes(), 0);
    }

    #[test]
    fn partition_splits_unpinned_budget_and_absorb_folds_stats() {
        let pinned = vec![0u8; 4 * PAGE_BYTES];
        let data = vec![0u8; 64 * PAGE_BYTES];
        let mut w = Window::new(16 * PAGE_BYTES, false);
        w.pin(&pinned[PAGE_BYTES..2 * PAGE_BYTES]);
        let parent_pinned = w.resident_bytes();

        let mut subs = w.partition(4);
        assert_eq!(subs.len(), 4);
        // Sum of sub-budgets plus the parent's pinned charge never
        // exceeds the parent budget.
        let total: usize = subs.iter().map(|s| s.budget()).sum();
        assert!(total + parent_pinned <= w.budget());

        // Each sub-window enforces its own share; churn through all of
        // them as four concurrent workers would.
        for (i, sub) in subs.iter_mut().enumerate() {
            for j in 0..8 {
                let at = (i * 16 + j) * PAGE_BYTES;
                sub.need(&data[at..at + PAGE_BYTES]);
                assert!(sub.resident_bytes() <= sub.budget());
            }
        }
        let peak_sum: usize = subs.iter().map(|s| s.high_water_bytes()).sum();
        let evictions: u64 = subs.iter().map(|s| s.stats().evictions).sum();
        assert!(evictions > 0, "3-page sub-budgets must evict on 8 needs");

        w.absorb(subs);
        // Conservative concurrent high-water: parent resident plus the
        // sum of sub peaks; leftover sub spans were released.
        assert_eq!(w.high_water_bytes(), parent_pinned + peak_sum);
        assert_eq!(w.resident_bytes(), parent_pinned);
        assert_eq!(w.stats().evictions, evictions);
    }

    #[test]
    fn partition_of_tiny_budget_floors_at_a_page() {
        let w = Window::new(PAGE_BYTES, false);
        let subs = w.partition(8);
        assert!(subs.iter().all(|s| s.budget() == PAGE_BYTES));
    }

    #[test]
    fn note_span_charges_whole_fault_clusters() {
        let data = vec![0u8; 4 * PAGE_BYTES];
        let mut w = Window::new(1 << 24, false);
        // A 10-byte stray row faults a page, and fault-around maps the
        // surrounding cached cluster.
        w.note_span(&data[100..110]);
        assert!(w.resident_bytes() >= FAULT_CLUSTER_BYTES);
        assert_eq!(w.resident_bytes() % FAULT_CLUSTER_BYTES, 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn advice_on_a_real_mapping_is_harmless() {
        use crate::mmap::Region;
        use crate::LoadMode;
        use std::io::Write;
        let path = std::env::temp_dir().join(format!("truss-window-advice-{}", std::process::id()));
        let payload: Vec<u8> = (0..PAGE_BYTES * 4).map(|i| (i % 251) as u8).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let region = Region::open(&path, LoadMode::Auto).unwrap();
        let bytes = region.as_bytes();
        let mut w = Window::new(2 * PAGE_BYTES, region.region_is_mapped());
        w.need(&bytes[..PAGE_BYTES]);
        assert_eq!(&bytes[..16], &payload[..16]);
        w.need(&bytes[2 * PAGE_BYTES..3 * PAGE_BYTES]);
        w.release_all();
        // MADV_DONTNEED on a private file mapping refaults from the file:
        // the contents must be intact afterwards.
        assert_eq!(bytes, &payload[..]);
        std::fs::remove_file(&path).unwrap();
    }
}

//! Property tests for the storage substrate: record round trips, external
//! sort vs in-memory sort, partition budget invariants.

use proptest::prelude::*;
use truss_graph::Edge;
use truss_storage::ext_sort::external_sort;
use truss_storage::partition::{plan_partition, PartitionStrategy};
use truss_storage::record::{EdgeRec, FixedRecord, RecordFile};
use truss_storage::{IoConfig, IoTracker, ScratchDir};

fn arb_rec() -> impl Strategy<Value = EdgeRec> {
    (0u32..500, 0u32..500, 0u32..100, 0u32..100).prop_filter_map(
        "self loop",
        |(a, b, sup, bound)| {
            if a == b {
                None
            } else {
                Some(EdgeRec {
                    edge: Edge::new(a, b),
                    sup,
                    bound,
                    class: 0,
                })
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn record_encode_decode(rec in arb_rec()) {
        let mut buf = [0u8; EdgeRec::SIZE];
        rec.encode(&mut buf);
        prop_assert_eq!(EdgeRec::decode(&buf), rec);
    }

    #[test]
    fn file_round_trip(recs in prop::collection::vec(arb_rec(), 0..300)) {
        let scratch = ScratchDir::new().unwrap();
        let f = RecordFile::from_iter(
            scratch.file("rt"),
            IoTracker::new(),
            recs.iter().copied(),
        )
        .unwrap();
        prop_assert_eq!(f.len() as usize, recs.len());
        prop_assert_eq!(f.read_all().unwrap(), recs);
    }

    #[test]
    fn external_sort_matches_std_sort(
        recs in prop::collection::vec(arb_rec(), 0..400),
        budget_exp in 9u32..14,
    ) {
        let scratch = ScratchDir::new().unwrap();
        let t = IoTracker::new();
        let input =
            RecordFile::from_iter(scratch.file("in"), t.clone(), recs.iter().copied())
                .unwrap();
        let io = IoConfig {
            memory_budget: 1 << budget_exp,
            block_size: 1 << (budget_exp - 3),
        };
        let sorted = external_sort(&input, &scratch, &t, &io, None).unwrap();
        let got = sorted.read_all().unwrap();
        let mut expect = recs.clone();
        expect.sort_by_key(|r| r.sort_key());
        prop_assert_eq!(got.len(), expect.len());
        // Equal-key records may be reordered relative to each other; compare
        // the sorted key sequences and the multisets.
        let got_keys: Vec<u128> = got.iter().map(|r| r.sort_key()).collect();
        let expect_keys: Vec<u128> = expect.iter().map(|r| r.sort_key()).collect();
        prop_assert_eq!(got_keys, expect_keys);
    }

    #[test]
    fn external_sort_with_sum_combiner(
        recs in prop::collection::vec(arb_rec(), 1..300),
    ) {
        let scratch = ScratchDir::new().unwrap();
        let t = IoTracker::new();
        let input =
            RecordFile::from_iter(scratch.file("in"), t.clone(), recs.iter().copied())
                .unwrap();
        let io = IoConfig { memory_budget: 1 << 10, block_size: 128 };
        let combine: fn(EdgeRec, EdgeRec) -> EdgeRec = |a, b| EdgeRec {
            sup: a.sup + b.sup,
            bound: a.bound.max(b.bound),
            ..a
        };
        let merged = external_sort(&input, &scratch, &t, &io, Some(combine)).unwrap();
        let got = merged.read_all().unwrap();
        // Keys strictly increase (combiner collapses duplicates).
        prop_assert!(got.windows(2).all(|w| w[0].sort_key() < w[1].sort_key()));
        // Total support preserved.
        let got_total: u64 = got.iter().map(|r| r.sup as u64).sum();
        let expect_total: u64 = recs.iter().map(|r| r.sup as u64).sum();
        prop_assert_eq!(got_total, expect_total);
        // Per-key max bound preserved.
        let mut max_bound = std::collections::HashMap::new();
        for r in &recs {
            let e = max_bound.entry(r.edge.key()).or_insert(0u32);
            *e = (*e).max(r.bound);
        }
        for r in &got {
            prop_assert_eq!(r.bound, max_bound[&r.edge.key()]);
        }
    }

    #[test]
    fn partition_respects_budget_for_all_strategies(
        degrees in prop::collection::vec(0u32..20, 1..150),
        budget in 20usize..200,
    ) {
        for strategy in [
            PartitionStrategy::Sequential,
            PartitionStrategy::Random { seed: 11 },
        ] {
            let Ok(p) = plan_partition(strategy, &degrees, budget, |_| Ok(())) else {
                // Only legal when some single degree exceeds the budget.
                prop_assert!(degrees.iter().any(|&d| d as usize > budget));
                continue;
            };
            let mut loads = vec![0usize; p.num_parts()];
            for (v, &d) in degrees.iter().enumerate() {
                loads[p.part_of(v as u32) as usize] += d as usize;
            }
            prop_assert!(loads.iter().all(|&l| l <= budget));
        }
    }
}

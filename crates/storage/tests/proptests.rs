//! Property tests for the storage substrate: record round trips, external
//! sort vs in-memory sort, partition budget invariants, and the v2
//! snapshot container (graph and index, owned vs mapped views).

use proptest::prelude::*;
use truss_graph::{CsrGraph, Edge};
use truss_storage::ext_sort::external_sort;
use truss_storage::partition::{plan_partition, PartitionStrategy};
use truss_storage::record::{EdgeRec, FixedRecord, RecordFile};
use truss_storage::snapshot::IndexSnapshotParts;
use truss_storage::{IoConfig, IoTracker, LoadMode, ScratchDir};

fn arb_rec() -> impl Strategy<Value = EdgeRec> {
    (0u32..500, 0u32..500, 0u32..100, 0u32..100).prop_filter_map(
        "self loop",
        |(a, b, sup, bound)| {
            if a == b {
                None
            } else {
                Some(EdgeRec {
                    edge: Edge::new(a, b),
                    sup,
                    bound,
                    class: 0,
                })
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn record_encode_decode(rec in arb_rec()) {
        let mut buf = [0u8; EdgeRec::SIZE];
        rec.encode(&mut buf);
        prop_assert_eq!(EdgeRec::decode(&buf), rec);
    }

    #[test]
    fn file_round_trip(recs in prop::collection::vec(arb_rec(), 0..300)) {
        let scratch = ScratchDir::new().unwrap();
        let f = RecordFile::from_iter(
            scratch.file("rt"),
            IoTracker::new(),
            recs.iter().copied(),
        )
        .unwrap();
        prop_assert_eq!(f.len() as usize, recs.len());
        prop_assert_eq!(f.read_all().unwrap(), recs);
    }

    #[test]
    fn external_sort_matches_std_sort(
        recs in prop::collection::vec(arb_rec(), 0..400),
        budget_exp in 9u32..14,
    ) {
        let scratch = ScratchDir::new().unwrap();
        let t = IoTracker::new();
        let input =
            RecordFile::from_iter(scratch.file("in"), t.clone(), recs.iter().copied())
                .unwrap();
        let io = IoConfig {
            memory_budget: 1 << budget_exp,
            block_size: 1 << (budget_exp - 3),
        };
        let sorted = external_sort(&input, &scratch, &t, &io, None).unwrap();
        let got = sorted.read_all().unwrap();
        let mut expect = recs.clone();
        expect.sort_by_key(|r| r.sort_key());
        prop_assert_eq!(got.len(), expect.len());
        // Equal-key records may be reordered relative to each other; compare
        // the sorted key sequences and the multisets.
        let got_keys: Vec<u128> = got.iter().map(|r| r.sort_key()).collect();
        let expect_keys: Vec<u128> = expect.iter().map(|r| r.sort_key()).collect();
        prop_assert_eq!(got_keys, expect_keys);
    }

    #[test]
    fn external_sort_with_sum_combiner(
        recs in prop::collection::vec(arb_rec(), 1..300),
    ) {
        let scratch = ScratchDir::new().unwrap();
        let t = IoTracker::new();
        let input =
            RecordFile::from_iter(scratch.file("in"), t.clone(), recs.iter().copied())
                .unwrap();
        let io = IoConfig { memory_budget: 1 << 10, block_size: 128 };
        let combine: fn(EdgeRec, EdgeRec) -> EdgeRec = |a, b| EdgeRec {
            sup: a.sup + b.sup,
            bound: a.bound.max(b.bound),
            ..a
        };
        let merged = external_sort(&input, &scratch, &t, &io, Some(combine)).unwrap();
        let got = merged.read_all().unwrap();
        // Keys strictly increase (combiner collapses duplicates).
        prop_assert!(got.windows(2).all(|w| w[0].sort_key() < w[1].sort_key()));
        // Total support preserved.
        let got_total: u64 = got.iter().map(|r| r.sup as u64).sum();
        let expect_total: u64 = recs.iter().map(|r| r.sup as u64).sum();
        prop_assert_eq!(got_total, expect_total);
        // Per-key max bound preserved.
        let mut max_bound = std::collections::HashMap::new();
        for r in &recs {
            let e = max_bound.entry(r.edge.key()).or_insert(0u32);
            *e = (*e).max(r.bound);
        }
        for r in &got {
            prop_assert_eq!(r.bound, max_bound[&r.edge.key()]);
        }
    }

    #[test]
    fn graph_snapshot_round_trip_owned_vs_mapped(
        raw_edges in prop::collection::vec((0u32..80, 0u32..80), 0..400),
        extra_vertices in 0usize..5,
    ) {
        let g = CsrGraph::from_edges(
            raw_edges
                .iter()
                .filter(|(a, b)| a != b)
                .map(|&(a, b)| Edge::new(a, b)),
        );
        let n = g.num_vertices() + extra_vertices;
        let g = CsrGraph::with_min_vertices(g, n);

        let scratch = ScratchDir::new().unwrap();
        let path = scratch.file("g.gr2");
        truss_storage::write_graph_snapshot(
            &g,
            std::fs::File::create(&path).unwrap(),
        )
        .unwrap();

        // Both load modes reproduce the graph exactly, including
        // trailing isolated vertices and per-vertex adjacency.
        for mode in [LoadMode::Auto, LoadMode::Buffered] {
            let got = truss_storage::open_graph_snapshot(&path, mode).unwrap();
            prop_assert_eq!(got.num_vertices(), g.num_vertices());
            prop_assert_eq!(got.edges(), g.edges());
            for v in g.iter_vertices() {
                prop_assert_eq!(got.neighbors(v), g.neighbors(v));
                prop_assert_eq!(got.neighbor_edge_ids(v), g.neighbor_edge_ids(v));
            }
        }

        // And a v2 write of the reopened view is byte-identical to the
        // original snapshot (view → write is lossless).
        let reopened = truss_storage::open_graph_snapshot(&path, LoadMode::Auto).unwrap();
        let mut rewrite = Vec::new();
        truss_storage::write_graph_snapshot(&reopened, &mut rewrite).unwrap();
        prop_assert_eq!(rewrite, std::fs::read(&path).unwrap());
    }

    #[test]
    fn index_snapshot_round_trip_owned_vs_mapped(
        raw_edges in prop::collection::vec((0u32..60, 0u32..60), 1..300),
        truss_seed in 0u32..1000,
    ) {
        // A fixed seed edge keeps the graph non-empty for every draw.
        let g = CsrGraph::from_edges(
            std::iter::once(Edge::new(61, 62)).chain(
                raw_edges
                    .iter()
                    .filter(|(a, b)| a != b)
                    .map(|&(a, b)| Edge::new(a, b)),
            ),
        );
        let m = g.num_edges();
        // A synthetic but structurally consistent decomposition: the
        // snapshot layer stores arrays, it does not recompute truss
        // numbers — consistency with a real engine is covered by the
        // truss-core suites.
        let trussness: Vec<u32> =
            (0..m).map(|i| 2 + ((i as u32).wrapping_mul(truss_seed.wrapping_add(7)) % 4)).collect();
        let k_max = *trussness.iter().max().unwrap();
        let mut order: Vec<u32> = (0..m as u32).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(trussness[i as usize]), i));
        let mut count_ge = vec![0u64; k_max as usize + 2];
        for (k, slot) in count_ge.iter_mut().enumerate() {
            *slot = trussness.iter().filter(|&&t| t as usize >= k).count() as u64;
        }
        let vertex_truss: Vec<u32> = (0..g.num_vertices() as u32)
            .map(|v| {
                g.neighbor_edge_ids(v)
                    .iter()
                    .map(|&e| trussness[e as usize])
                    .max()
                    .unwrap_or(0)
            })
            .collect();

        let scratch = ScratchDir::new().unwrap();
        let path = scratch.file("i.tix");
        truss_storage::write_index_snapshot(
            &IndexSnapshotParts {
                graph: &g,
                k_max,
                trussness: &trussness,
                order: &order,
                count_ge: &count_ge,
                vertex_truss: &vertex_truss,
            },
            std::fs::File::create(&path).unwrap(),
        )
        .unwrap();

        for mode in [LoadMode::Auto, LoadMode::Buffered] {
            let snap = truss_storage::open_index_snapshot(&path, mode).unwrap();
            prop_assert_eq!(snap.k_max, k_max);
            prop_assert_eq!(snap.graph.edges(), g.edges());
            prop_assert_eq!(&*snap.trussness, &trussness[..]);
            prop_assert_eq!(&*snap.order, &order[..]);
            prop_assert_eq!(&*snap.count_ge, &count_ge[..]);
            prop_assert_eq!(&*snap.vertex_truss, &vertex_truss[..]);
        }
    }

    #[test]
    fn snapshot_rejects_any_payload_bit_flip(
        raw_edges in prop::collection::vec((0u32..40, 0u32..40), 1..120),
        flip in 0usize..1_000_000,
    ) {
        let g = CsrGraph::from_edges(
            std::iter::once(Edge::new(41, 42)).chain(
                raw_edges
                    .iter()
                    .filter(|(a, b)| a != b)
                    .map(|&(a, b)| Edge::new(a, b)),
            ),
        );
        let mut buf = Vec::new();
        truss_storage::write_graph_snapshot(&g, &mut buf).unwrap();
        // Flip one bit anywhere past the fixed 56-byte header — section
        // table included: every such flip must be rejected (checksum, or
        // an earlier structural check for table corruption).
        let covered_start = 56;
        let at = covered_start + flip % (buf.len() - covered_start);
        buf[at] ^= 1;
        let region = std::sync::Arc::new(truss_storage::Region::Heap(
            truss_storage::mmap::AlignedBytes::copy_from(&buf),
        ));
        prop_assert!(truss_storage::snapshot::read_graph_snapshot_from(region).is_err());
    }

    #[test]
    fn partition_respects_budget_for_all_strategies(
        degrees in prop::collection::vec(0u32..20, 1..150),
        budget in 20usize..200,
    ) {
        for strategy in [
            PartitionStrategy::Sequential,
            PartitionStrategy::Random { seed: 11 },
        ] {
            let Ok(p) = plan_partition(strategy, &degrees, budget, |_| Ok(())) else {
                // Only legal when some single degree exceeds the budget.
                prop_assert!(degrees.iter().any(|&d| d as usize > budget));
                continue;
            };
            let mut loads = vec![0usize; p.num_parts()];
            for (v, &d) in degrees.iter().enumerate() {
                loads[p.part_of(v as u32) as usize] += d as usize;
            }
            prop_assert!(loads.iter().all(|&l| l <= budget));
        }
    }
}

//! Edge-support computation (Definition 1: `sup(e)` = number of triangles
//! containing `e`).

use crate::list::{for_each_triangle, ForwardAdjacency};
use truss_graph::{CsrGraph, VertexId};

/// Computes the support of every edge, indexed by `EdgeId`.
///
/// `O(m^1.5)` time and `O(m + n)` space via the forward algorithm — the
/// initialization step of both in-memory decomposition algorithms (§3).
/// Enumerates over a freshly built flat [`ForwardAdjacency`]; callers
/// that keep the oriented adjacency around for later probing (the
/// TD-inmem+ peel) build it once and use
/// [`ForwardAdjacency::edge_supports`] directly.
pub fn edge_supports(g: &CsrGraph) -> Vec<u32> {
    ForwardAdjacency::build(g).edge_supports()
}

/// Support computation by per-edge sorted-neighborhood intersection — the
/// `O(Σ_v deg(v)²)` method Algorithm 1 uses. Kept as an independent
/// implementation for cross-checking and for the TD-inmem baseline.
pub fn edge_supports_by_intersection(g: &CsrGraph) -> Vec<u32> {
    let mut sup = vec![0u32; g.num_edges()];
    for (id, e) in g.iter_edges() {
        sup[id as usize] = common_neighbor_count(g, e.u, e.v);
    }
    sup
}

/// `|nb(u) ∩ nb(v)|` by merging the two sorted lists.
pub fn common_neighbor_count(g: &CsrGraph, u: VertexId, v: VertexId) -> u32 {
    let (mut a, mut b) = (g.neighbors(u), g.neighbors(v));
    let mut count = 0;
    while let (Some(&x), Some(&y)) = (a.first(), b.first()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => a = &a[1..],
            std::cmp::Ordering::Greater => b = &b[1..],
            std::cmp::Ordering::Equal => {
                count += 1;
                a = &a[1..];
                b = &b[1..];
            }
        }
    }
    count
}

/// Total number of triangles in `g`.
pub fn triangle_count(g: &CsrGraph) -> u64 {
    let mut count = 0u64;
    for_each_triangle(g, |_, _, _, _, _, _| count += 1);
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use truss_graph::generators::classic::complete;
    use truss_graph::generators::erdos_renyi::gnm;
    use truss_graph::generators::figures::figure2_graph;
    use truss_graph::Edge;

    #[test]
    fn kn_supports() {
        // Every edge of K_n is in n-2 triangles.
        for n in [3usize, 4, 7] {
            let g = complete(n);
            let sup = edge_supports(&g);
            assert!(sup.iter().all(|&s| s as usize == n - 2));
        }
    }

    #[test]
    fn both_methods_agree_on_random_graphs() {
        for seed in 0..5 {
            let g = gnm(80, 600, seed);
            assert_eq!(edge_supports(&g), edge_supports_by_intersection(&g));
        }
    }

    #[test]
    fn figure2_support_of_ik_is_zero() {
        let g = figure2_graph();
        let sup = edge_supports(&g);
        let ik = g.edge_id(8, 10).expect("(i,k) edge"); // i=8, k=10
        assert_eq!(sup[ik as usize], 0);
        // And it is the only support-0 edge (Example 2).
        assert_eq!(sup.iter().filter(|&&s| s == 0).count(), 1);
    }

    #[test]
    fn sum_of_supports_is_three_triangles() {
        let g = gnm(60, 500, 9);
        let sup = edge_supports(&g);
        let total: u64 = sup.iter().map(|&s| s as u64).sum();
        assert_eq!(total, 3 * triangle_count(&g));
    }

    #[test]
    fn common_neighbors() {
        let g = CsrGraph::from_edges(vec![
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(1, 2),
            Edge::new(0, 3),
            Edge::new(1, 3),
        ]);
        assert_eq!(common_neighbor_count(&g, 0, 1), 2); // 2 and 3
        assert_eq!(common_neighbor_count(&g, 2, 3), 2); // 0 and 1
    }
}

//! I/O-efficient support computation over disk-resident graphs.
//!
//! This module implements the iterative neighborhood-subgraph pass of
//! Chu & Cheng \[13, 14\] that both external truss algorithms build on
//! (stage 1 of TD-bottomup and TD-topdown):
//!
//! 1. partition the vertex set so each `NS(P_i)` fits in the memory budget,
//! 2. distribute edges into per-part bucket files (an edge goes to the
//!    bucket of each endpoint's part — at most two),
//! 3. load each bucket, list its local triangles, accumulate per-edge
//!    supports, and let a [`PartVisitor`] compute any per-part extras (the
//!    bottom-up algorithm computes local truss numbers here),
//! 4. *finalize* internal edges (both endpoints in the part) — their
//!    accumulated support is now exact — and carry cross edges into the next
//!    iteration via an external-sort merge that sums partial supports.
//!
//! **Why the supports are exact** (`DESIGN.md` §5.1): every triangle is
//! counted exactly once — in the iteration where two of its vertices first
//! share a part, which is also the iteration its first edge is finalized;
//! a bucket's complete triangles always have ≥ 2 internal vertices, and a
//! triangle with ≥ 2 vertices in `P_i` is complete only in `P_i`'s bucket.
//! Hence when an edge is finalized, every triangle containing it has been
//! counted, and no triangle is counted twice.

use truss_graph::subgraph::{from_parent_edges, NeighborhoodSubgraph};
use truss_graph::{CsrGraph, VertexId};
use truss_storage::ext_sort::external_sort;
use truss_storage::partition::{plan_partition, PartitionStrategy};
use truss_storage::record::{EdgeRec, RecordFile};
use truss_storage::{EdgeListFile, IoConfig, IoTracker, Result, ScratchDir, StorageError};

use crate::list::for_each_triangle;

/// Per-part hook invoked after the driver has accumulated this part's
/// triangle contributions into `recs[i].sup`.
///
/// `recs[i]` corresponds to local edge id `i` of `ns.sub.graph` (the driver
/// guarantees this alignment). Implementations may update `recs[i].bound`
/// (e.g. with local truss numbers) but must combine with the incoming value
/// (`max`) — cross edges are visited once per incident part and once more in
/// the iteration where they finalize.
pub trait PartVisitor {
    /// Inspects one materialized neighborhood subgraph.
    fn visit(&mut self, ns: &NeighborhoodSubgraph, recs: &mut [EdgeRec]);
}

/// A visitor that computes nothing — plain external support counting.
pub struct NoopVisitor;

impl PartVisitor for NoopVisitor {
    fn visit(&mut self, _ns: &NeighborhoodSubgraph, _recs: &mut [EdgeRec]) {}
}

/// Configuration of the partitioned pass.
#[derive(Debug, Clone, Copy)]
pub struct PassConfig {
    /// Memory budget / block size.
    pub io: IoConfig,
    /// Partitioner (§5.1 gives three choices; `Random` is the default).
    pub strategy: PartitionStrategy,
    /// Bytes charged against the budget per half-edge of a materialized
    /// part (records + local CSR + per-edge working arrays).
    pub bytes_per_half_edge: usize,
    /// Safety cap on iterations (the expected count is `O(m/M)`).
    pub max_iterations: usize,
}

impl PassConfig {
    /// Defaults: random partitioning, 32 bytes per half-edge, 1000-iteration
    /// cap.
    pub fn new(io: IoConfig) -> Self {
        PassConfig {
            io,
            strategy: PartitionStrategy::Random { seed: 0x7355 },
            bytes_per_half_edge: 32,
            max_iterations: 1000,
        }
    }
}

/// Result of a partitioned pass.
pub struct PassOutput {
    /// Every input edge, sorted by edge key, with **exact** support in `sup`
    /// and the visitor's final `bound`.
    pub finalized: EdgeListFile,
    /// Number of partition iterations used.
    pub iterations: usize,
    /// Total number of parts materialized across iterations.
    pub parts_processed: usize,
}

/// Runs the iterative partitioned support pass. See the module docs.
///
/// `input` must be sorted by edge key (the canonical order produced by
/// [`edge_list_from_graph`] or any `external_sort`). `num_vertices` bounds
/// the vertex id space; the pass keeps `O(n)` memory for degrees and the
/// partition map, which is the memory regime of the paper's partitioners.
pub fn partitioned_support_pass(
    input: &EdgeListFile,
    num_vertices: usize,
    scratch: &ScratchDir,
    tracker: &IoTracker,
    cfg: &PassConfig,
    visitor: &mut dyn PartVisitor,
) -> Result<PassOutput> {
    let budget_half_edges = cfg
        .io
        .memory_budget
        .checked_div(cfg.bytes_per_half_edge)
        .unwrap_or(0)
        .max(4);

    let mut finalized = EdgeListFile::create(scratch.file("pass-finalized"), tracker.clone())?;
    let mut current: Option<EdgeListFile> = None; // None = read from `input`
    let mut iterations = 0usize;
    let mut parts_processed = 0usize;
    let mut stagnant = 0usize;

    loop {
        let cur_len = current.as_ref().map(|f| f.len()).unwrap_or(input.len());
        if cur_len == 0 {
            break;
        }
        if iterations >= cfg.max_iterations {
            return Err(StorageError::BudgetTooSmall(format!(
                "support pass did not converge in {} iterations ({} edges left)",
                cfg.max_iterations, cur_len
            )));
        }
        iterations += 1;

        // Degrees of the current (shrunk) graph: one scan.
        let mut degrees = vec![0u32; num_vertices];
        scan_current(input, &current, |r| {
            degrees[r.edge.u as usize] += 1;
            degrees[r.edge.v as usize] += 1;
        })?;

        // After a stagnant iteration, reseed randomly to break symmetry.
        let strategy = if stagnant == 0 && iterations == 1 {
            cfg.strategy
        } else {
            match cfg.strategy {
                PartitionStrategy::Sequential => PartitionStrategy::Random {
                    seed: 0xdead ^ iterations as u64,
                },
                PartitionStrategy::Random { seed } => PartitionStrategy::Random {
                    seed: seed.wrapping_add(iterations as u64),
                },
                PartitionStrategy::Seeded { seed } => {
                    if stagnant > 0 {
                        PartitionStrategy::Random {
                            seed: seed.wrapping_add(iterations as u64),
                        }
                    } else {
                        PartitionStrategy::Seeded {
                            seed: seed.wrapping_add(iterations as u64),
                        }
                    }
                }
            }
        };

        let partition = plan_partition(strategy, &degrees, budget_half_edges, |f| {
            scan_current(input, &current, |r| f(r.edge))
        })?;
        drop(degrees);

        // Distribute records into bucket files: primary copy to part(u)
        // (keeps the accumulated support), secondary copy to part(v) with
        // support zeroed so the survivor merge can sum partial counts.
        let p = partition.num_parts();
        let mut buckets = Vec::with_capacity(p);
        for _ in 0..p {
            buckets.push(EdgeListFile::create(
                scratch.file("pass-bucket"),
                tracker.clone(),
            )?);
        }
        {
            let mut dist_err: Option<StorageError> = None;
            scan_current(input, &current, |r| {
                if dist_err.is_some() {
                    return;
                }
                let pu = partition.part_of(r.edge.u) as usize;
                let pv = partition.part_of(r.edge.v) as usize;
                if let Err(e) = buckets[pu].push(r) {
                    dist_err = Some(e);
                    return;
                }
                if pv != pu {
                    let secondary = EdgeRec { sup: 0, ..r };
                    if let Err(e) = buckets[pv].push(secondary) {
                        dist_err = Some(e);
                    }
                }
            })?;
            if let Some(e) = dist_err {
                return Err(e);
            }
        }
        // The previous survivor file is no longer needed.
        if let Some(old) = current.take() {
            old.delete()?;
        }

        let mut survivors = EdgeListFile::create(scratch.file("pass-survivors"), tracker.clone())?;
        let finalized_before = finalized.len();

        for (part_idx, bucket) in buckets.into_iter().enumerate() {
            let bucket = bucket.finish()?;
            if bucket.is_empty() {
                bucket.delete()?;
                continue;
            }
            parts_processed += 1;
            let mut recs = bucket.read_all()?;
            bucket.delete()?;

            let ns = materialize_part(&recs, |v| partition.part_of(v) as usize == part_idx);
            debug_assert_eq!(ns.sub.graph.num_edges(), recs.len());

            // Accumulate this part's triangles (enumerated over the flat
            // ForwardAdjacency each in-memory pass builds). Complete
            // triangles in a bucket always have >= 2 internal vertices and
            // occur in exactly one bucket (module docs), so a plain +1 on
            // all three edges is globally exact.
            for_each_triangle(&ns.sub.graph, |_, _, _, e1, e2, e3| {
                recs[e1 as usize].sup += 1;
                recs[e2 as usize].sup += 1;
                recs[e3 as usize].sup += 1;
            });

            visitor.visit(&ns, &mut recs);

            for (i, rec) in recs.iter().enumerate() {
                let local = ns.sub.graph.edge(i as u32);
                if ns.is_internal_edge(local) {
                    finalized.push(*rec)?;
                } else {
                    survivors.push(*rec)?;
                }
            }
        }

        let survivors = survivors.finish()?;
        stagnant = if finalized.len() == finalized_before {
            stagnant + 1
        } else {
            0
        };
        if survivors.is_empty() {
            survivors.delete()?;
            break;
        }
        // Merge duplicate cross-edge copies: supports add, bounds max.
        let merged = external_sort(&survivors, scratch, tracker, &cfg.io, Some(merge_partials))?;
        survivors.delete()?;
        current = Some(merged);
    }

    let finalized = finalized.finish()?;
    let sorted = external_sort(&finalized, scratch, tracker, &cfg.io, None)?;
    finalized.delete()?;
    Ok(PassOutput {
        finalized: sorted,
        iterations,
        parts_processed,
    })
}

/// Combiner for the two partial copies of a cross edge.
fn merge_partials(a: EdgeRec, b: EdgeRec) -> EdgeRec {
    debug_assert_eq!(a.edge, b.edge);
    EdgeRec {
        edge: a.edge,
        sup: a.sup + b.sup,
        bound: a.bound.max(b.bound),
        class: a.class.max(b.class),
    }
}

/// Scans either the caller's input (first iteration) or the current survivor
/// file.
fn scan_current(
    input: &EdgeListFile,
    current: &Option<EdgeListFile>,
    f: impl FnMut(EdgeRec),
) -> Result<()> {
    match current {
        Some(c) => c.scan(f),
        None => input.scan(f),
    }
}

/// Builds the local neighborhood subgraph for a bucket. Records arrive
/// sorted by edge key, and the monotone relabeling preserves order, so local
/// edge id `i` corresponds to `recs[i]`.
fn materialize_part(
    recs: &[EdgeRec],
    is_internal: impl Fn(VertexId) -> bool,
) -> NeighborhoodSubgraph {
    debug_assert!(recs.windows(2).all(|w| w[0].edge < w[1].edge));
    let sub = from_parent_edges(recs.iter().map(|r| r.edge));
    let internal = sub.to_parent.iter().map(|&p| is_internal(p)).collect();
    NeighborhoodSubgraph { sub, internal }
}

/// Convenience: materializes a [`CsrGraph`] as a sorted [`EdgeListFile`]
/// with zeroed payloads, streaming the graph's edge section through a
/// 1 MiB advice window.
pub fn edge_list_from_graph(
    g: &CsrGraph,
    path: std::path::PathBuf,
    tracker: IoTracker,
) -> Result<EdgeListFile> {
    edge_list_from_graph_windowed(g, path, tracker, 1 << 20)
}

/// As [`edge_list_from_graph`], with an explicit window budget: the GR2
/// edge section is read chunk-at-a-time through the storage layer's
/// [`Window`](truss_storage::window::Window), so spilling a mapped
/// snapshot to scratch leaves at most `window_budget` bytes of it
/// resident instead of faulting the whole section in. The external
/// engines pass a slice of their memory budget here.
pub fn edge_list_from_graph_windowed(
    g: &CsrGraph,
    path: std::path::PathBuf,
    tracker: IoTracker,
    window_budget: usize,
) -> Result<EdgeListFile> {
    let mut window = truss_storage::window::Window::new(window_budget, g.is_mapped());
    let mut writer = RecordFile::create(path, tracker)?;
    let mut failed: Option<StorageError> = None;
    let chunk_bytes = (window_budget / 2).max(4096);
    window.for_chunks(g.edges_section().as_slice(), chunk_bytes, |_, edges| {
        if failed.is_some() {
            return;
        }
        for &e in edges {
            if let Err(err) = writer.push(EdgeRec::bare(e)) {
                failed = Some(err);
                return;
            }
        }
    });
    match failed {
        Some(err) => Err(err),
        None => Ok(writer.finish()?),
    }
}

/// Computes exact supports for every edge of a disk-resident graph and
/// returns them as a sorted edge file (the `sup` field is filled, `bound`
/// and `class` are untouched inputs).
pub fn external_edge_supports(
    input: &EdgeListFile,
    num_vertices: usize,
    scratch: &ScratchDir,
    tracker: &IoTracker,
    cfg: &PassConfig,
) -> Result<PassOutput> {
    partitioned_support_pass(input, num_vertices, scratch, tracker, cfg, &mut NoopVisitor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::edge_supports;
    use truss_graph::generators::classic::complete;
    use truss_graph::generators::erdos_renyi::gnm;
    use truss_graph::generators::figures::figure2_graph;

    /// Runs the external pass and checks it matches in-memory supports.
    fn check_graph(g: &CsrGraph, budget: usize, strategy: PartitionStrategy) -> PassOutput {
        let scratch = ScratchDir::new().unwrap();
        let tracker = IoTracker::new();
        let input = edge_list_from_graph(g, scratch.file("g"), tracker.clone()).unwrap();
        let mut cfg = PassConfig::new(IoConfig {
            memory_budget: budget,
            block_size: (budget / 4).max(64),
        });
        cfg.strategy = strategy;
        let out =
            external_edge_supports(&input, g.num_vertices(), &scratch, &tracker, &cfg).unwrap();

        let expect = edge_supports(g);
        let mut got = Vec::new();
        out.finalized.scan(|r| got.push(r)).unwrap();
        assert_eq!(got.len(), g.num_edges());
        for r in &got {
            let id = g.edge_id(r.edge.u, r.edge.v).expect("edge exists");
            assert_eq!(
                r.sup, expect[id as usize],
                "support mismatch on {:?}",
                r.edge
            );
        }
        out
    }

    #[test]
    fn matches_in_memory_when_fitting() {
        let g = figure2_graph();
        let out = check_graph(&g, 1 << 20, PartitionStrategy::Sequential);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn matches_with_tiny_budget_random() {
        let g = gnm(60, 400, 5);
        // ~800 half-edges total; budget of 200 half-edges → ≥ 4 parts.
        let out = check_graph(&g, 200 * 32, PartitionStrategy::Random { seed: 1 });
        assert!(out.iterations >= 1);
        assert!(out.parts_processed >= 2);
    }

    #[test]
    fn matches_with_tiny_budget_sequential_and_seeded() {
        let g = gnm(50, 300, 8);
        check_graph(&g, 150 * 32, PartitionStrategy::Sequential);
        check_graph(&g, 150 * 32, PartitionStrategy::Seeded { seed: 9 });
    }

    #[test]
    fn clique_supports_external() {
        let g = complete(20); // every edge support 18
        let out = check_graph(&g, 300 * 32, PartitionStrategy::Random { seed: 3 });
        assert!(out.iterations >= 1);
    }

    #[test]
    fn multi_iteration_convergence() {
        // Force many iterations with a very small budget on a larger graph.
        let g = gnm(120, 1200, 11);
        let out = check_graph(&g, 130 * 32, PartitionStrategy::Random { seed: 2 });
        assert!(out.iterations >= 2, "expected multiple iterations");
    }

    #[test]
    fn budget_too_small_for_hub_errors() {
        let g = truss_graph::generators::classic::star(100);
        let scratch = ScratchDir::new().unwrap();
        let tracker = IoTracker::new();
        let input = edge_list_from_graph(&g, scratch.file("g"), tracker.clone()).unwrap();
        let cfg = PassConfig::new(IoConfig {
            memory_budget: 50 * 32, // hub degree 100 > 50 half-edges
            block_size: 64,
        });
        let r = external_edge_supports(&input, g.num_vertices(), &scratch, &tracker, &cfg);
        assert!(matches!(r, Err(StorageError::BudgetTooSmall(_))));
    }

    #[test]
    fn io_stats_recorded() {
        let g = gnm(40, 200, 4);
        let scratch = ScratchDir::new().unwrap();
        let tracker = IoTracker::new();
        let input = edge_list_from_graph(&g, scratch.file("g"), tracker.clone()).unwrap();
        let cfg = PassConfig::new(IoConfig {
            memory_budget: 100 * 32,
            block_size: 256,
        });
        external_edge_supports(&input, g.num_vertices(), &scratch, &tracker, &cfg).unwrap();
        let stats = tracker.stats(&cfg.io);
        assert!(
            stats.scans >= 3,
            "expected several scans, got {}",
            stats.scans
        );
        assert!(stats.bytes_read > input.bytes());
    }
}

//! Triangle counting and listing.
//!
//! Truss decomposition begins by computing the *support* of every edge — the
//! number of triangles containing it (Definition 1). This crate provides:
//!
//! * [`count::edge_supports`] — in-memory support computation by
//!   merge-intersection over sorted adjacency lists, `O(m^1.5)` on the
//!   compact-forward orientation (Schank \[27\], Latapy \[20\]),
//! * [`list::for_each_triangle`] — in-memory triangle listing with a
//!   callback,
//! * [`external::external_edge_supports`] — the I/O-efficient, partition
//!   based support computation of Chu & Cheng \[13, 14\] used by stage 1 of
//!   both external algorithms,
//! * [`par`] — thread-count-aware twins of the in-memory entry points
//!   ([`par::for_each_triangle_par`], [`par::edge_supports_par`],
//!   [`par::triangle_count_par`]) used by the shared-memory parallel
//!   engine.

pub mod count;
pub mod external;
pub mod list;
pub mod par;

pub use count::{edge_supports, triangle_count};
pub use external::external_edge_supports;
pub use list::for_each_triangle;
pub use par::{edge_supports_par, for_each_triangle_par, triangle_count_par};

//! Triangle counting and listing.
//!
//! Truss decomposition begins by computing the *support* of every edge — the
//! number of triangles containing it (Definition 1). This crate provides:
//!
//! * [`list::ForwardAdjacency`] — the flat, CSR-shaped oriented adjacency
//!   (struct-of-arrays `offsets`/`ranks`/`verts`/`edge_ids`, built in two
//!   O(m) counting passes with no per-vertex allocations) that every
//!   in-memory triangle path shares, plus the hybrid merge/galloping
//!   intersection kernel ([`list::intersect_hybrid`]),
//! * [`count::edge_supports`] — in-memory support computation over the
//!   compact-forward orientation, `O(m^1.5)` (Schank \[27\], Latapy \[20\]),
//! * [`list::for_each_triangle`] — in-memory triangle listing with a
//!   callback,
//! * [`external::external_edge_supports`] — the I/O-efficient, partition
//!   based support computation of Chu & Cheng \[13, 14\] used by stage 1 of
//!   both external algorithms,
//! * [`par`] — thread-count-aware twins of the in-memory entry points
//!   ([`par::for_each_triangle_par`], [`par::edge_supports_par`],
//!   [`par::triangle_count_par`]) used by the shared-memory parallel
//!   engine; the `*_fwd_par` variants share a caller-prebuilt
//!   [`list::ForwardAdjacency`].

pub mod count;
pub mod external;
pub mod list;
pub mod par;

pub use count::{edge_supports, triangle_count};
pub use external::external_edge_supports;
pub use list::{for_each_triangle, intersect_hybrid, intersect_merge, ForwardAdjacency, FwdList};
pub use par::{
    edge_supports_fwd_par, edge_supports_par, for_each_triangle_fwd_par, for_each_triangle_par,
    triangle_count_par,
};

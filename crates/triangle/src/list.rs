//! In-memory triangle listing via the *forward* (compact-forward) algorithm
//! of Schank \[27\] / Latapy \[20\], which runs in `O(m^1.5)` — the bound the
//! paper's Algorithm 2 matches.

use truss_graph::{CsrGraph, EdgeId, VertexId};

/// One entry of a forward adjacency list: `(rank, vertex, undirected edge
/// id)`. Shared with the parallel lister in [`crate::par`].
pub(crate) type FwdEntry = (u32, VertexId, EdgeId);

/// Degree-based total order: vertices sorted by `(degree, id)`. The forward
/// algorithm orients every edge toward the higher-ranked endpoint; each
/// triangle is then discovered exactly once, at its lowest-ranked vertex.
pub(crate) fn ranks(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_unstable_by_key(|&v| (g.degree(v), v));
    let mut rank = vec![0u32; n];
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    rank
}

/// The forward (higher-ranked) neighbors of `v`, sorted by rank — one slot
/// of the forward adjacency, buildable independently per vertex (which is
/// what lets [`crate::par`] fill the adjacency concurrently).
pub(crate) fn forward_list(g: &CsrGraph, v: VertexId, rank: &[u32]) -> Vec<FwdEntry> {
    let rv = rank[v as usize];
    let mut list = Vec::new();
    for (&w, &id) in g.neighbors(v).iter().zip(g.neighbor_edge_ids(v)) {
        let rw = rank[w as usize];
        if rw > rv {
            list.push((rw, w, id));
        }
    }
    list.sort_unstable_by_key(|&(rw, _, _)| rw);
    list
}

/// Intersects two forward lists by rank, calling `f(w, e_uw, e_vw)` once
/// per common forward neighbor `w` — the merge step both the serial and
/// parallel listers share.
pub(crate) fn intersect_forward<F>(fu: &[FwdEntry], fv: &[FwdEntry], mut f: F)
where
    F: FnMut(VertexId, EdgeId, EdgeId),
{
    let (mut i, mut j) = (0usize, 0usize);
    while i < fu.len() && j < fv.len() {
        match fu[i].0.cmp(&fv[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(fu[i].1, fu[i].2, fv[j].2);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Calls `f(u, v, w, e_uv, e_uw, e_vw)` once per triangle of `g`.
///
/// The vertex arguments satisfy `rank(u) < rank(v) < rank(w)` in the
/// degree order; the three edge ids are the undirected ids of the
/// corresponding edges.
pub fn for_each_triangle<F>(g: &CsrGraph, mut f: F)
where
    F: FnMut(VertexId, VertexId, VertexId, EdgeId, EdgeId, EdgeId),
{
    let n = g.num_vertices();
    if n == 0 {
        return;
    }
    let rank = ranks(g);

    // Forward adjacency: for each vertex, its higher-ranked neighbors sorted
    // by rank, with the undirected edge id alongside.
    let mut fwd: Vec<Vec<FwdEntry>> = vec![Vec::new(); n];
    for v in 0..n as VertexId {
        fwd[v as usize] = forward_list(g, v, &rank);
    }

    for u in 0..n as VertexId {
        let fu = &fwd[u as usize];
        for &(_, v, e_uv) in fu {
            intersect_forward(fu, &fwd[v as usize], |w, e_uw, e_vw| {
                f(u, v, w, e_uv, e_uw, e_vw)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use truss_graph::generators::classic::{complete, complete_bipartite, cycle};
    use truss_graph::Edge;

    fn collect_triangles(g: &CsrGraph) -> Vec<[VertexId; 3]> {
        let mut out = Vec::new();
        for_each_triangle(g, |u, v, w, _, _, _| {
            let mut t = [u, v, w];
            t.sort_unstable();
            out.push(t);
        });
        out.sort_unstable();
        out
    }

    #[test]
    fn k4_has_four_triangles() {
        let tris = collect_triangles(&complete(4));
        assert_eq!(tris, vec![[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]]);
    }

    #[test]
    fn kn_triangle_count() {
        // C(n,3) triangles in K_n.
        for n in [3usize, 5, 8] {
            let count = collect_triangles(&complete(n)).len();
            assert_eq!(count, n * (n - 1) * (n - 2) / 6);
        }
    }

    #[test]
    fn triangle_free_graphs() {
        assert!(collect_triangles(&cycle(6)).is_empty());
        assert!(collect_triangles(&complete_bipartite(4, 4)).is_empty());
    }

    #[test]
    fn edge_ids_are_correct() {
        let g = complete(5);
        for_each_triangle(&g, |u, v, w, e_uv, e_uw, e_vw| {
            assert_eq!(g.edge(e_uv), Edge::new(u, v));
            assert_eq!(g.edge(e_uw), Edge::new(u, w));
            assert_eq!(g.edge(e_vw), Edge::new(v, w));
        });
    }

    #[test]
    fn no_duplicates_on_random_graph() {
        let g = truss_graph::generators::erdos_renyi::gnm(60, 400, 3);
        let tris = collect_triangles(&g);
        let mut dedup = tris.clone();
        dedup.dedup();
        assert_eq!(tris.len(), dedup.len());
        // Cross-check against brute force.
        let mut brute = Vec::new();
        for u in 0..60u32 {
            for v in (u + 1)..60 {
                if !g.has_edge(u, v) {
                    continue;
                }
                for w in (v + 1)..60 {
                    if g.has_edge(u, w) && g.has_edge(v, w) {
                        brute.push([u, v, w]);
                    }
                }
            }
        }
        brute.sort_unstable();
        assert_eq!(tris, brute);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(vec![]);
        assert!(collect_triangles(&g).is_empty());
    }
}

//! In-memory triangle listing via the *forward* (compact-forward) algorithm
//! of Schank \[27\] / Latapy \[20\], which runs in `O(m^1.5)` — the bound the
//! paper's Algorithm 2 matches.
//!
//! The oriented adjacency lives in a single flat [`ForwardAdjacency`]
//! structure — CSR-shaped struct-of-arrays, built in two O(m) counting
//! passes with no per-vertex heap allocations — shared by the serial
//! lister here, the thread-parallel lister in [`crate::par`], and the
//! peeling hot path of `truss-core` (which probes it for edge membership
//! instead of a global hash table). See `docs/ALGORITHMS.md`
//! ("hot-path engineering") for the layout and cost model.

use std::ops::Range;
use truss_graph::{CsrGraph, EdgeId, VertexId};

/// When one forward list is this many times longer than the other, the
/// intersection switches from the two-pointer merge to galloping probes of
/// the longer list (`O(s · log l)` instead of `O(s + l)`).
const GALLOP_FACTOR: usize = 16;

/// Degree-based total order: vertices sorted by `(degree, id)`. The forward
/// algorithm orients every edge toward the higher-ranked endpoint; each
/// triangle is then discovered exactly once, at its lowest-ranked vertex.
///
/// Computed by an `O(n + max_deg)` counting sort on degree (stable in id,
/// so ties break by id — the same total order the previous comparison sort
/// produced, which keeps triangle orientation and every golden test
/// unchanged).
pub fn ranks(g: &CsrGraph) -> Vec<u32> {
    rank_order(g).0
}

/// [`ranks`] plus its inverse: `order[r]` is the vertex with rank `r`.
fn rank_order(g: &CsrGraph) -> (Vec<u32>, Vec<VertexId>) {
    let n = g.num_vertices();
    let max_deg = g.max_degree();
    // Counting sort on degree. `counts[d]` becomes the first rank handed to
    // a degree-`d` vertex; scanning vertices in ascending id then assigns
    // consecutive ranks within each degree class in id order — exactly the
    // `(degree, id)` lexicographic order.
    let mut counts = vec![0u32; max_deg + 2];
    for v in 0..n {
        counts[g.degree(v as VertexId) + 1] += 1;
    }
    for d in 1..counts.len() {
        counts[d] += counts[d - 1];
    }
    let mut rank = vec![0u32; n];
    let mut order = vec![0 as VertexId; n];
    for v in 0..n {
        let r = counts[g.degree(v as VertexId)];
        counts[g.degree(v as VertexId)] += 1;
        rank[v] = r;
        order[r as usize] = v as VertexId;
    }
    (rank, order)
}

/// One vertex's forward list, borrowed as parallel columns: the ranks are
/// strictly ascending and unique (rank is a permutation of `0..n`), and
/// `verts`/`edge_ids` carry the target vertex and undirected edge id of
/// each entry.
#[derive(Clone, Copy, Debug)]
pub struct FwdList<'a> {
    /// Rank of each forward neighbor, strictly ascending.
    pub ranks: &'a [u32],
    /// The forward neighbors themselves (parallel to `ranks`).
    pub verts: &'a [VertexId],
    /// Undirected edge id of each entry (parallel to `ranks`).
    pub edge_ids: &'a [EdgeId],
}

impl<'a> FwdList<'a> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True when the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }
}

/// Intersects two forward lists by rank with the plain two-pointer merge,
/// calling `f(w, e_uw, e_vw)` once per common forward neighbor `w` —
/// `e_uw` comes from `a`, `e_vw` from `b`. The reference kernel the hybrid
/// version is property-tested against.
pub fn intersect_merge<F>(a: FwdList<'_>, b: FwdList<'_>, mut f: F)
where
    F: FnMut(VertexId, EdgeId, EdgeId),
{
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.ranks.len() && j < b.ranks.len() {
        match a.ranks[i].cmp(&b.ranks[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(a.verts[i], a.edge_ids[i], b.edge_ids[j]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Intersects two forward lists, picking the kernel by length ratio: the
/// two-pointer merge for similar lengths, galloping (exponential + binary)
/// probes of the longer list when the lengths are skewed past the 16x
/// cutoff (`GALLOP_FACTOR`). Emits exactly what [`intersect_merge`]
/// emits, in the same (ascending-rank) order.
pub fn intersect_hybrid<F>(a: FwdList<'_>, b: FwdList<'_>, f: F)
where
    F: FnMut(VertexId, EdgeId, EdgeId),
{
    if a.len().saturating_mul(GALLOP_FACTOR) < b.len() {
        gallop(a, b, false, f)
    } else if b.len().saturating_mul(GALLOP_FACTOR) < a.len() {
        gallop(b, a, true, f)
    } else {
        intersect_merge(a, b, f)
    }
}

/// Galloping intersection: for each entry of `short`, exponential search
/// from the current cursor in `long`, then binary search inside the probe
/// window. `swapped` records that `short` was the caller's second list, so
/// the edge-id argument order of the callback is preserved.
fn gallop<F>(short: FwdList<'_>, long: FwdList<'_>, swapped: bool, mut f: F)
where
    F: FnMut(VertexId, EdgeId, EdgeId),
{
    let mut base = 0usize;
    for i in 0..short.ranks.len() {
        if base >= long.ranks.len() {
            return;
        }
        let r = short.ranks[i];
        let rest = &long.ranks[base..];
        // Exponential probe: after the loop, everything before `bound/2` is
        // < r, and the first entry ≥ r (if any) sits before `bound`.
        let mut bound = 1usize;
        while bound < rest.len() && rest[bound - 1] < r {
            bound <<= 1;
        }
        let lo = bound >> 1;
        let hi = bound.min(rest.len());
        let j = base + lo + rest[lo..hi].partition_point(|&x| x < r);
        base = j;
        if j < long.ranks.len() && long.ranks[j] == r {
            if swapped {
                f(short.verts[i], long.edge_ids[j], short.edge_ids[i]);
            } else {
                f(short.verts[i], short.edge_ids[i], long.edge_ids[j]);
            }
            base = j + 1;
        }
    }
}

/// The flat oriented (forward) adjacency: for every vertex, its
/// higher-ranked neighbors sorted by rank, stored as one CSR-shaped
/// struct-of-arrays. Every undirected edge appears exactly once (at its
/// lower-ranked endpoint), so the three columns have length `m`.
///
/// Built in two O(m) counting passes with zero per-vertex heap
/// allocations (a fixed handful of flat arrays overall — asserted by the
/// allocation-count test in `tests/alloc.rs`):
///
/// 1. count each vertex's forward degree and prefix-sum into `offsets`;
/// 2. walk vertices in ascending rank order, appending each one to the
///    slots of its lower-ranked neighbors — which fills every per-vertex
///    segment in ascending rank order without any sorting.
///
/// This is the shared triangle substrate: the serial and parallel listers
/// enumerate over it, [`crate::count::edge_supports`] counts over it, and
/// `truss-core`'s TD-inmem+ peel probes it ([`ForwardAdjacency::edge_between`])
/// in place of a global edge hash map.
pub struct ForwardAdjacency {
    /// `offsets[v]..offsets[v + 1]` delimits vertex `v`'s entries.
    offsets: Vec<u64>,
    /// Rank of each forward neighbor — ascending within each vertex.
    ranks: Vec<u32>,
    /// The forward neighbors (parallel to `ranks`).
    verts: Vec<VertexId>,
    /// Undirected edge id of each entry (parallel to `ranks`).
    edge_ids: Vec<EdgeId>,
    /// Rank of every vertex (the `(degree, id)` order).
    vertex_rank: Vec<u32>,
}

impl ForwardAdjacency {
    /// Builds the forward adjacency of `g`. Two O(m) passes, no per-vertex
    /// allocations.
    pub fn build(g: &CsrGraph) -> ForwardAdjacency {
        let n = g.num_vertices();
        let (rank, order) = rank_order(g);

        // Pass 1: forward degrees, prefix-summed into offsets.
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            let rv = rank[v];
            let mut fd = 0u64;
            for &w in g.neighbors(v as VertexId) {
                fd += (rank[w as usize] > rv) as u64;
            }
            offsets[v + 1] = fd;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let m = offsets[n] as usize;
        debug_assert_eq!(m, g.num_edges());

        // Pass 2: walk vertices in ascending rank order; each vertex `w`
        // appends itself to the slot of every lower-ranked neighbor, so
        // every per-vertex segment fills in ascending rank order.
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut ranks_col = vec![0u32; m];
        let mut verts = vec![0 as VertexId; m];
        let mut edge_ids = vec![0 as EdgeId; m];
        for (r, &w) in order.iter().enumerate() {
            let rw = r as u32;
            for (&x, &eid) in g.neighbors(w).iter().zip(g.neighbor_edge_ids(w)) {
                if rank[x as usize] < rw {
                    let at = cursor[x as usize] as usize;
                    ranks_col[at] = rw;
                    verts[at] = w;
                    edge_ids[at] = eid;
                    cursor[x as usize] += 1;
                }
            }
        }

        ForwardAdjacency {
            offsets,
            ranks: ranks_col,
            verts,
            edge_ids,
            vertex_rank: rank,
        }
    }

    /// [`ForwardAdjacency::build`] with `threads` workers: the counting
    /// pass runs over static contiguous vertex chunks, and the fill pass
    /// writes each vertex's segment independently (collect forward
    /// entries into a per-*worker* scratch buffer, sort by rank, write
    /// back) — segments are disjoint column ranges, so workers never
    /// alias. Falls back to the serial two-pass build at 1 thread (which
    /// needs no sorting at all).
    pub fn build_par(g: &CsrGraph, threads: usize) -> ForwardAdjacency {
        let n = g.num_vertices();
        if threads <= 1 || n == 0 {
            return Self::build(g);
        }
        let (rank, _) = rank_order(g);
        let chunk = n.div_ceil(threads).max(1);

        // Pass 1: forward degrees in parallel (disjoint offset chunks).
        let mut offsets = vec![0u64; n + 1];
        std::thread::scope(|scope| {
            for (ci, out) in offsets[1..].chunks_mut(chunk).enumerate() {
                let rank = &rank;
                scope.spawn(move || {
                    for (off, slot) in out.iter_mut().enumerate() {
                        let v = (ci * chunk + off) as VertexId;
                        let rv = rank[v as usize];
                        let mut fd = 0u64;
                        for &w in g.neighbors(v) {
                            fd += (rank[w as usize] > rv) as u64;
                        }
                        *slot = fd;
                    }
                });
            }
        });
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let m = offsets[n] as usize;

        // Pass 2: per-vertex segments, written by whichever worker owns
        // the vertex chunk. Each worker reuses one scratch buffer across
        // its vertices (no per-vertex allocation).
        let mut ranks_col = vec![0u32; m];
        let mut verts = vec![0 as VertexId; m];
        let mut edge_ids = vec![0 as EdgeId; m];
        std::thread::scope(|scope| {
            let (mut rr, mut vr, mut er) = (&mut ranks_col[..], &mut verts[..], &mut edge_ids[..]);
            let mut start_v = 0usize;
            while start_v < n {
                let end_v = (start_v + chunk).min(n);
                let seg = (offsets[end_v] - offsets[start_v]) as usize;
                let (r0, r1) = rr.split_at_mut(seg);
                let (v0, v1) = vr.split_at_mut(seg);
                let (e0, e1) = er.split_at_mut(seg);
                (rr, vr, er) = (r1, v1, e1);
                let (rank, offsets) = (&rank, &offsets);
                scope.spawn(move || {
                    let base = offsets[start_v];
                    let mut scratch: Vec<(u32, VertexId, EdgeId)> = Vec::new();
                    for v in start_v..end_v {
                        let rv = rank[v];
                        scratch.clear();
                        for (&w, &eid) in g
                            .neighbors(v as VertexId)
                            .iter()
                            .zip(g.neighbor_edge_ids(v as VertexId))
                        {
                            let rw = rank[w as usize];
                            if rw > rv {
                                scratch.push((rw, w, eid));
                            }
                        }
                        scratch.sort_unstable_by_key(|&(rw, _, _)| rw);
                        let at = (offsets[v] - base) as usize;
                        for (i, &(rw, w, eid)) in scratch.iter().enumerate() {
                            r0[at + i] = rw;
                            v0[at + i] = w;
                            e0[at + i] = eid;
                        }
                    }
                });
                start_v = end_v;
            }
        });

        ForwardAdjacency {
            offsets,
            ranks: ranks_col,
            verts,
            edge_ids,
            vertex_rank: rank,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (every edge has exactly one entry).
    pub fn num_edges(&self) -> usize {
        self.ranks.len()
    }

    /// Rank of `v` in the `(degree, id)` total order.
    #[inline]
    pub fn rank(&self, v: VertexId) -> u32 {
        self.vertex_rank[v as usize]
    }

    /// The entry range of vertex `v`.
    #[inline]
    fn range(&self, v: VertexId) -> Range<usize> {
        self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize
    }

    /// Vertex `v`'s forward list as borrowed columns.
    #[inline]
    pub fn list(&self, v: VertexId) -> FwdList<'_> {
        let r = self.range(v);
        FwdList {
            ranks: &self.ranks[r.clone()],
            verts: &self.verts[r.clone()],
            edge_ids: &self.edge_ids[r],
        }
    }

    /// Looks up the undirected edge id of `(a, b)`, if the edge exists:
    /// a binary search for the higher rank in the lower-ranked endpoint's
    /// forward list — `O(log fwd_deg)`, touching one short sorted run
    /// instead of a global hash table. This is the TD-inmem+ peel's Step 8
    /// membership test in the `Oriented` configuration.
    #[inline]
    pub fn edge_between(&self, a: VertexId, b: VertexId) -> Option<EdgeId> {
        if a == b {
            return None;
        }
        self.edge_between_ranked(
            a,
            self.vertex_rank[a as usize],
            b,
            self.vertex_rank[b as usize],
        )
    }

    /// [`ForwardAdjacency::edge_between`] with both ranks supplied by the
    /// caller — the hot-loop variant for callers that already carry ranks
    /// (the peel walks a live adjacency whose entries cache them), saving
    /// the two random `vertex_rank` reads per probe.
    #[inline]
    pub fn edge_between_ranked(
        &self,
        a: VertexId,
        ra: u32,
        b: VertexId,
        rb: u32,
    ) -> Option<EdgeId> {
        debug_assert_eq!(ra, self.vertex_rank[a as usize]);
        debug_assert_eq!(rb, self.vertex_rank[b as usize]);
        let (lo, hi_rank) = if ra < rb { (a, rb) } else { (b, ra) };
        let r = self.range(lo);
        let ranks = &self.ranks[r.clone()];
        // Forward runs are short for most vertices (the orientation caps
        // them at O(√m)); below a handful of entries a branch-predictable
        // linear scan of the sorted run beats the binary search.
        if ranks.len() <= 8 {
            for (i, &rk) in ranks.iter().enumerate() {
                if rk >= hi_rank {
                    return (rk == hi_rank).then(|| self.edge_ids[r.start + i]);
                }
            }
            return None;
        }
        ranks
            .binary_search(&hi_rank)
            .ok()
            .map(|i| self.edge_ids[r.start + i])
    }

    /// The rank of every vertex, indexed by vertex id (the `(degree, id)`
    /// order the orientation uses).
    pub fn vertex_ranks(&self) -> &[u32] {
        &self.vertex_rank
    }

    /// Calls `f(u, v, w, e_uv, e_uw, e_vw)` once per triangle whose
    /// lowest-ranked vertex is `u` (the forward algorithm's per-vertex
    /// work item — [`crate::par`] schedules these over threads).
    #[inline]
    pub fn for_each_triangle_at<F>(&self, u: VertexId, f: &mut F)
    where
        F: FnMut(VertexId, VertexId, VertexId, EdgeId, EdgeId, EdgeId),
    {
        let fu = self.list(u);
        for i in 0..fu.len() {
            let (v, e_uv) = (fu.verts[i], fu.edge_ids[i]);
            intersect_hybrid(fu, self.list(v), |w, e_uw, e_vw| {
                f(u, v, w, e_uv, e_uw, e_vw)
            });
        }
    }

    /// Calls `f` once per triangle of the graph (rank-ordered vertex
    /// arguments, see [`for_each_triangle`]).
    pub fn for_each_triangle<F>(&self, mut f: F)
    where
        F: FnMut(VertexId, VertexId, VertexId, EdgeId, EdgeId, EdgeId),
    {
        for u in 0..self.num_vertices() as VertexId {
            self.for_each_triangle_at(u, &mut f);
        }
    }

    /// Support of every edge (triangle count per edge), indexed by
    /// [`EdgeId`] — one enumeration over the flat structure.
    pub fn edge_supports(&self) -> Vec<u32> {
        let mut sup = vec![0u32; self.num_edges()];
        self.for_each_triangle(|_, _, _, e1, e2, e3| {
            sup[e1 as usize] += 1;
            sup[e2 as usize] += 1;
            sup[e3 as usize] += 1;
        });
        sup
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * 8
            + self.ranks.len() * 4
            + self.verts.len() * 4
            + self.edge_ids.len() * 4
            + self.vertex_rank.len() * 4
    }
}

/// Calls `f(u, v, w, e_uv, e_uw, e_vw)` once per triangle of `g`.
///
/// The vertex arguments satisfy `rank(u) < rank(v) < rank(w)` in the
/// degree order; the three edge ids are the undirected ids of the
/// corresponding edges.
pub fn for_each_triangle<F>(g: &CsrGraph, f: F)
where
    F: FnMut(VertexId, VertexId, VertexId, EdgeId, EdgeId, EdgeId),
{
    ForwardAdjacency::build(g).for_each_triangle(f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use truss_graph::generators::classic::{complete, complete_bipartite, cycle, star};
    use truss_graph::generators::erdos_renyi::gnm;
    use truss_graph::Edge;

    fn collect_triangles(g: &CsrGraph) -> Vec<[VertexId; 3]> {
        let mut out = Vec::new();
        for_each_triangle(g, |u, v, w, _, _, _| {
            let mut t = [u, v, w];
            t.sort_unstable();
            out.push(t);
        });
        out.sort_unstable();
        out
    }

    #[test]
    fn k4_has_four_triangles() {
        let tris = collect_triangles(&complete(4));
        assert_eq!(tris, vec![[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]]);
    }

    #[test]
    fn kn_triangle_count() {
        // C(n,3) triangles in K_n.
        for n in [3usize, 5, 8] {
            let count = collect_triangles(&complete(n)).len();
            assert_eq!(count, n * (n - 1) * (n - 2) / 6);
        }
    }

    #[test]
    fn triangle_free_graphs() {
        assert!(collect_triangles(&cycle(6)).is_empty());
        assert!(collect_triangles(&complete_bipartite(4, 4)).is_empty());
    }

    #[test]
    fn edge_ids_are_correct() {
        let g = complete(5);
        for_each_triangle(&g, |u, v, w, e_uv, e_uw, e_vw| {
            assert_eq!(g.edge(e_uv), Edge::new(u, v));
            assert_eq!(g.edge(e_uw), Edge::new(u, w));
            assert_eq!(g.edge(e_vw), Edge::new(v, w));
        });
    }

    #[test]
    fn no_duplicates_on_random_graph() {
        let g = gnm(60, 400, 3);
        let tris = collect_triangles(&g);
        let mut dedup = tris.clone();
        dedup.dedup();
        assert_eq!(tris.len(), dedup.len());
        // Cross-check against brute force.
        let mut brute = Vec::new();
        for u in 0..60u32 {
            for v in (u + 1)..60 {
                if !g.has_edge(u, v) {
                    continue;
                }
                for w in (v + 1)..60 {
                    if g.has_edge(u, w) && g.has_edge(v, w) {
                        brute.push([u, v, w]);
                    }
                }
            }
        }
        brute.sort_unstable();
        assert_eq!(tris, brute);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(vec![]);
        assert!(collect_triangles(&g).is_empty());
    }

    #[test]
    fn counting_sort_ranks_match_comparison_sort() {
        for (i, g) in [
            gnm(80, 600, 5),
            complete(9),
            star(12),
            cycle(7),
            CsrGraph::from_edges(vec![]),
        ]
        .iter()
        .enumerate()
        {
            let n = g.num_vertices();
            let mut order: Vec<VertexId> = (0..n as VertexId).collect();
            order.sort_unstable_by_key(|&v| (g.degree(v), v));
            let mut expect = vec![0u32; n];
            for (r, &v) in order.iter().enumerate() {
                expect[v as usize] = r as u32;
            }
            assert_eq!(ranks(g), expect, "graph {i}");
        }
    }

    #[test]
    fn forward_adjacency_shape_and_order() {
        let g = gnm(50, 300, 8);
        let fwd = ForwardAdjacency::build(&g);
        assert_eq!(fwd.num_edges(), g.num_edges());
        let mut entries = 0usize;
        for v in 0..g.num_vertices() as VertexId {
            let l = fwd.list(v);
            entries += l.len();
            // Ranks strictly ascending, all higher than v's own rank, and
            // consistent with the vertex and edge-id columns.
            assert!(l.ranks.windows(2).all(|w| w[0] < w[1]), "v = {v}");
            for i in 0..l.len() {
                assert!(l.ranks[i] > fwd.rank(v));
                assert_eq!(fwd.rank(l.verts[i]), l.ranks[i]);
                assert_eq!(g.edge(l.edge_ids[i]), Edge::new(v, l.verts[i]));
            }
        }
        assert_eq!(entries, g.num_edges());
    }

    #[test]
    fn parallel_build_matches_serial() {
        for (i, g) in [
            gnm(150, 1200, 6),
            complete(10),
            star(40),
            CsrGraph::from_edges(vec![]),
        ]
        .iter()
        .enumerate()
        {
            let serial = ForwardAdjacency::build(g);
            for threads in [1usize, 2, 4, 7] {
                let par = ForwardAdjacency::build_par(g, threads);
                assert_eq!(par.offsets, serial.offsets, "graph {i}, {threads}t");
                assert_eq!(par.ranks, serial.ranks, "graph {i}, {threads}t");
                assert_eq!(par.verts, serial.verts, "graph {i}, {threads}t");
                assert_eq!(par.edge_ids, serial.edge_ids, "graph {i}, {threads}t");
                assert_eq!(par.vertex_rank, serial.vertex_rank, "graph {i}, {threads}t");
            }
        }
    }

    #[test]
    fn edge_between_matches_graph() {
        let g = gnm(40, 250, 4);
        let fwd = ForwardAdjacency::build(&g);
        for u in 0..40u32 {
            for v in 0..40u32 {
                assert_eq!(fwd.edge_between(u, v), g.edge_id(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn hybrid_and_merge_agree_on_forward_lists() {
        // Star + clique mixtures give heavily skewed list pairs.
        let mut edges: Vec<Edge> = (1..200u32).map(|v| Edge::new(0, v)).collect();
        for u in 1..16u32 {
            for v in (u + 1)..16 {
                edges.push(Edge::new(u, v));
            }
        }
        let g = CsrGraph::from_edges(edges);
        let fwd = ForwardAdjacency::build(&g);
        for u in 0..g.num_vertices() as VertexId {
            for v in 0..g.num_vertices() as VertexId {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                intersect_hybrid(fwd.list(u), fwd.list(v), |w, e1, e2| a.push((w, e1, e2)));
                intersect_merge(fwd.list(u), fwd.list(v), |w, e1, e2| b.push((w, e1, e2)));
                assert_eq!(a, b, "({u},{v})");
            }
        }
    }
}

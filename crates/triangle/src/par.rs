//! Thread-count-aware triangle listing and support counting.
//!
//! The forward algorithm ([`crate::list::for_each_triangle`]) splits
//! cleanly: each triangle is discovered at exactly one (lowest-ranked)
//! vertex `u`, so enumerating over disjoint vertex ranges partitions the
//! triangle set. All workers share one read-only flat
//! [`ForwardAdjacency`] — built once in two O(m) passes, no per-vertex
//! allocations — instead of the per-vertex `Vec<Vec<_>>` the old code
//! rebuilt. [`for_each_triangle_par`] is the `list_par` entry (the
//! callback runs concurrently and must synchronize its own writes);
//! [`edge_supports_par`] / [`triangle_count_par`] are the `count_par`
//! entries built on it, accumulating into atomics.
//!
//! All functions take an explicit thread count and run the serial code
//! path when it is 1, so callers can thread
//! `truss_core::engine::EngineConfig::threads` straight through. Work is
//! scheduled dynamically in fixed-size vertex blocks because per-vertex
//! triangle cost is heavily skewed on power-law graphs.

use crate::list::{for_each_triangle, ForwardAdjacency};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use truss_graph::{CsrGraph, EdgeId, VertexId};

/// Vertices handed to a worker at a time. Small enough to balance skewed
/// degree distributions, large enough that the shared cursor is not
/// contended.
const VERTEX_BLOCK: usize = 256;

/// Spawns `threads` scoped workers running `worker(range)` over dynamic
/// `VERTEX_BLOCK`-sized chunks of `0..n`. (Kept local: `truss-core`'s pool
/// depends on this crate, so the dependency cannot point the other way.)
fn par_blocks<F>(n: usize, threads: usize, worker: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let cursor = AtomicUsize::new(0);
    let drain = || loop {
        let start = cursor.fetch_add(VERTEX_BLOCK, Ordering::Relaxed);
        if start >= n {
            break;
        }
        worker(start..(start + VERTEX_BLOCK).min(n));
    };
    if threads <= 1 {
        drain();
        return;
    }
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(drain);
        }
    });
}

/// Calls `f(u, v, w, e_uv, e_uw, e_vw)` once per triangle of `fwd`'s
/// graph, from `threads` worker threads sharing the prebuilt flat
/// adjacency — the entry the parallel engine uses so support
/// initialization and any later probing reuse one structure.
///
/// The callback observes each triangle exactly once but runs concurrently;
/// it must be `Sync` and synchronize any shared writes. Triangle order is
/// unspecified.
pub fn for_each_triangle_fwd_par<F>(fwd: &ForwardAdjacency, threads: usize, f: F)
where
    F: Fn(VertexId, VertexId, VertexId, EdgeId, EdgeId, EdgeId) + Sync,
{
    let n = fwd.num_vertices();
    if n == 0 {
        return;
    }
    if threads <= 1 {
        let mut f = |u, v, w, e1, e2, e3| f(u, v, w, e1, e2, e3);
        fwd.for_each_triangle(&mut f);
        return;
    }
    let f = &f;
    par_blocks(n, threads, |range| {
        for u in range {
            fwd.for_each_triangle_at(u as VertexId, &mut |a, b, c, e1, e2, e3| {
                f(a, b, c, e1, e2, e3)
            });
        }
    });
}

/// Calls `f(u, v, w, e_uv, e_uw, e_vw)` once per triangle of `g`, from
/// `threads` worker threads — the parallel twin of
/// [`crate::list::for_each_triangle`].
pub fn for_each_triangle_par<F>(g: &CsrGraph, threads: usize, f: F)
where
    F: Fn(VertexId, VertexId, VertexId, EdgeId, EdgeId, EdgeId) + Sync,
{
    if threads <= 1 {
        return for_each_triangle(g, f);
    }
    let fwd = ForwardAdjacency::build_par(g, threads);
    for_each_triangle_fwd_par(&fwd, threads, f);
}

/// [`crate::count::edge_supports`] over a prebuilt [`ForwardAdjacency`]
/// with `threads` workers.
///
/// Each worker accumulates into a private `u32` array and a column-sliced
/// parallel pass reduces them: three plain adds per triangle instead of
/// three `fetch_add`s on shared counters, whose cache lines the hot
/// (high-support) edges would otherwise ping-pong between cores. Costs
/// `threads` transient support-array copies — callers accounting peak
/// memory should charge `4·m·(threads + 1)` bytes for this phase.
pub fn edge_supports_fwd_par(fwd: &ForwardAdjacency, threads: usize) -> Vec<u32> {
    if threads <= 1 {
        return fwd.edge_supports();
    }
    let m = fwd.num_edges();
    let n = fwd.num_vertices();
    let cursor = AtomicUsize::new(0);
    let mut locals: Vec<Vec<u32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut sup = vec![0u32; m];
                    loop {
                        let start = cursor.fetch_add(VERTEX_BLOCK, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for u in start..(start + VERTEX_BLOCK).min(n) {
                            fwd.for_each_triangle_at(u as VertexId, &mut |_, _, _, e1, e2, e3| {
                                sup[e1 as usize] += 1;
                                sup[e2 as usize] += 1;
                                sup[e3 as usize] += 1;
                            });
                        }
                    }
                    sup
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("support worker panicked"))
            .collect()
    });
    let mut out = locals.swap_remove(0);
    let rest = locals;
    if rest.is_empty() || m == 0 {
        return out;
    }
    let chunk = m.div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for (ci, slice) in out.chunks_mut(chunk).enumerate() {
            let rest = &rest;
            scope.spawn(move || {
                let base = ci * chunk;
                for r in rest {
                    for (i, s) in slice.iter_mut().enumerate() {
                        *s += r[base + i];
                    }
                }
            });
        }
    });
    out
}

/// [`crate::count::edge_supports`] with `threads` workers: per-edge
/// support via parallel triangle listing into atomic counters.
pub fn edge_supports_par(g: &CsrGraph, threads: usize) -> Vec<u32> {
    if threads <= 1 {
        return crate::count::edge_supports(g);
    }
    let fwd = ForwardAdjacency::build_par(g, threads);
    edge_supports_fwd_par(&fwd, threads)
}

/// [`crate::count::triangle_count`] with `threads` workers.
pub fn triangle_count_par(g: &CsrGraph, threads: usize) -> u64 {
    let count = AtomicU64::new(0);
    for_each_triangle_par(g, threads, |_, _, _, _, _, _| {
        count.fetch_add(1, Ordering::Relaxed);
    });
    count.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::{edge_supports, triangle_count};
    use std::sync::Mutex;
    use truss_graph::generators::classic::complete;
    use truss_graph::generators::erdos_renyi::gnm;

    #[test]
    fn supports_match_serial_across_thread_counts() {
        for seed in 0..3 {
            let g = gnm(120, 1400, seed);
            let serial = edge_supports(&g);
            for threads in [1, 2, 4, 8] {
                assert_eq!(
                    edge_supports_par(&g, threads),
                    serial,
                    "seed {seed}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn counts_match_serial() {
        let g = gnm(100, 1200, 7);
        let serial = triangle_count(&g);
        for threads in [1, 3, 6] {
            assert_eq!(triangle_count_par(&g, threads), serial);
        }
    }

    #[test]
    fn listing_yields_each_triangle_once() {
        let g = complete(9);
        let seen = Mutex::new(Vec::new());
        for_each_triangle_par(&g, 4, |u, v, w, _, _, _| {
            let mut t = [u, v, w];
            t.sort_unstable();
            seen.lock().unwrap().push(t);
        });
        let mut tris = seen.into_inner().unwrap();
        tris.sort_unstable();
        assert_eq!(tris.len(), 9 * 8 * 7 / 6);
        let mut dedup = tris.clone();
        dedup.dedup();
        assert_eq!(tris, dedup);
    }

    #[test]
    fn edge_ids_are_correct_in_parallel() {
        let g = gnm(60, 500, 11);
        for_each_triangle_par(&g, 3, |u, v, w, e_uv, e_uw, e_vw| {
            assert_eq!(g.edge(e_uv), truss_graph::Edge::new(u, v));
            assert_eq!(g.edge(e_uw), truss_graph::Edge::new(u, w));
            assert_eq!(g.edge(e_vw), truss_graph::Edge::new(v, w));
        });
    }

    #[test]
    fn prebuilt_adjacency_is_shareable() {
        let g = gnm(90, 900, 2);
        let fwd = ForwardAdjacency::build(&g);
        let serial = edge_supports(&g);
        for threads in [1, 2, 4] {
            assert_eq!(edge_supports_fwd_par(&fwd, threads), serial);
        }
    }

    #[test]
    fn empty_and_triangle_free() {
        let empty = CsrGraph::from_edges(vec![]);
        assert_eq!(triangle_count_par(&empty, 4), 0);
        let path = CsrGraph::from_edges(vec![
            truss_graph::Edge::new(0, 1),
            truss_graph::Edge::new(1, 2),
        ]);
        assert_eq!(edge_supports_par(&path, 4), vec![0, 0]);
    }
}

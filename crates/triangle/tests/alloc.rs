//! Allocation accounting for the flat forward adjacency: the build must
//! perform a fixed handful of flat-array allocations — *zero* per-vertex
//! heap allocations — so the count is independent of graph size.
//!
//! This lives in its own integration-test binary (one test, no
//! concurrent allocator traffic) so the global counting allocator
//! measures only what the test runs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use truss_triangle::ForwardAdjacency;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations_during_build(g: &truss_graph::CsrGraph) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    let fwd = ForwardAdjacency::build(g);
    let count = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(fwd.num_edges(), g.num_edges());
    count
}

#[test]
fn forward_adjacency_build_allocation_count_is_flat() {
    let small = truss_graph::generators::erdos_renyi::gnm(500, 3_000, 1);
    let large = truss_graph::generators::erdos_renyi::gnm(20_000, 120_000, 2);

    // Warm up once (lazy runtime allocations, if any).
    let _ = allocations_during_build(&small);

    let a = allocations_during_build(&small);
    let b = allocations_during_build(&large);
    // 40x the vertices, identical allocation count: nothing per-vertex.
    assert_eq!(a, b, "allocation count grew with graph size");
    // And the fixed count is a small handful of flat arrays (ranks,
    // order, counting-sort bins, offsets, cursor, three columns).
    assert!(a <= 16, "expected a fixed handful of allocations, got {a}");
}

//! Network backbone via the top-down algorithm: compute only the top-t
//! k-trusses (§6 — "the heart or backbone of a network") without paying for
//! a full decomposition.
//!
//! ```sh
//! cargo run --release --example backbone_topdown
//! ```

use truss_decomposition::core::top_down::{top_down_decompose, TopDownConfig};
use truss_decomposition::graph::generators::datasets::Dataset;
use truss_decomposition::storage::record::{EdgeRec, FixedRecord};
use truss_decomposition::storage::IoConfig;

fn main() {
    // A web-graph analogue with a deep truss hierarchy.
    let g = Dataset::Web.build_scaled(1.0 / 8192.0, 3);
    println!(
        "web analogue: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let graph_bytes = g.num_edges() * EdgeRec::SIZE;
    let budget = (graph_bytes / 8)
        .max(truss_decomposition::core::minimum_budget(&g, 64))
        .max(1 << 14);
    let io = IoConfig {
        memory_budget: budget,
        block_size: (budget / 32).max(1024),
    };

    // Only the top 3 classes — the backbone.
    let t = 3;
    let cfg = TopDownConfig::new(io).top_t(t);
    let (result, report) = top_down_decompose(&g, &cfg).expect("top-down");

    println!(
        "\ninitial upper bound k_1st = {}, true k_max = {}",
        report.k_first, result.k_max
    );
    if let Some(ki) = report.k_init {
        println!("k_init batching solved the band k ≥ {ki} in one in-memory pass");
    }
    println!(
        "rounds: {}, candidate edges total: {}",
        report.rounds, report.candidate_edges_total
    );

    println!("\ntop-{t} k-classes (the backbone):");
    for (k, edges) in result.classes.iter().rev().take(t as usize) {
        let mut vertices: Vec<u32> = edges.iter().flat_map(|e| [e.u, e.v]).collect();
        vertices.sort_unstable();
        vertices.dedup();
        println!(
            "  Φ_{k}: {} edges over {} vertices",
            edges.len(),
            vertices.len()
        );
    }
    println!(
        "\ncomplete decomposition: {} (top-t stops early by design)",
        result.complete
    );
}

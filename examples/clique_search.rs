//! Truss-accelerated maximum-clique search (§7.4's application).
//!
//! The paper argues k-truss is a better clique heuristic than k-core: a
//! clique of size k must sit inside the k-truss, so `k_max` bounds the
//! maximum clique far more tightly than `c_max + 1`, and the truss levels
//! are small search spaces.
//!
//! ```sh
//! cargo run --release --example clique_search
//! ```

use truss_decomposition::core::clique::max_clique;
use truss_decomposition::core::core_decomposition::core_decompose;
use truss_decomposition::core::decompose::truss_decompose;
use truss_decomposition::graph::generators::erdos_renyi::gnm;
use truss_decomposition::graph::generators::planted::planted_clique;

fn main() {
    // A sparse random graph with a hidden 14-clique.
    let base = gnm(3000, 15_000, 11);
    let g = planted_clique(&base, 14, 23);
    println!(
        "graph: {} vertices, {} edges (planted 14-clique)",
        g.num_vertices(),
        g.num_edges()
    );

    let d = truss_decompose(&g);
    let cores = core_decompose(&g);
    println!(
        "bounds on the maximum clique: ω ≤ {} (truss k_max)  vs  ω ≤ {} (core c_max + 1)",
        d.k_max(),
        cores.c_max() + 1
    );

    let t = d.truss_edge_ids(d.k_max()).len();
    println!(
        "search space: the {}-truss has only {} edges (graph has {})",
        d.k_max(),
        t,
        g.num_edges()
    );

    let result = max_clique(&g, &d);
    println!(
        "maximum clique: {} vertices {:?} (searched {} truss levels)",
        result.clique.len(),
        result.clique,
        result.levels_searched
    );
    assert!(result.clique.len() >= 14);
    for (i, &a) in result.clique.iter().enumerate() {
        for &b in &result.clique[i + 1..] {
            assert!(g.has_edge(a, b));
        }
    }
    println!("verified: the reported vertex set is a clique");
}

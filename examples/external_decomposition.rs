//! Out-of-core decomposition: TD-bottomup under a memory budget far smaller
//! than the graph, with full I/O accounting.
//!
//! ```sh
//! cargo run --release --example external_decomposition
//! ```

use truss_decomposition::core::bottom_up::{bottom_up_decompose, BottomUpConfig};
use truss_decomposition::graph::generators::datasets::Dataset;
use truss_decomposition::prelude::*;
use truss_decomposition::storage::record::{EdgeRec, FixedRecord};
use truss_decomposition::storage::IoConfig;

fn main() {
    let g = Dataset::Amazon.build_scaled(1.0 / 256.0, 7);
    let graph_bytes = g.num_edges() * EdgeRec::SIZE;
    println!(
        "graph: {} vertices, {} edges ({} bytes on disk)",
        g.num_vertices(),
        g.num_edges(),
        graph_bytes
    );

    // Give the algorithm one eighth of the graph's size — it must partition.
    let budget = (graph_bytes / 8)
        .max(truss_decomposition::core::minimum_budget(&g, 64))
        .max(1 << 14);
    let io = IoConfig {
        memory_budget: budget,
        block_size: (budget / 32).max(1024),
    };
    println!(
        "memory budget M = {} bytes ({}% of |G|), block size B = {} bytes",
        io.memory_budget,
        100 * io.memory_budget / graph_bytes.max(1),
        io.block_size
    );

    let cfg = BottomUpConfig::new(io);
    let (decomposition, report) = bottom_up_decompose(&g, &cfg).expect("bottom-up");

    println!("\nk_max = {}", decomposition.k_max());
    println!(
        "lower-bounding iterations : {}",
        report.lower_bound_iterations
    );
    println!("k-rounds                  : {}", report.rounds);
    println!("oversized candidates      : {}", report.oversized_rounds);
    println!(
        "candidate edges total     : {}",
        report.candidate_edges_total
    );
    println!("\nI/O (Aggarwal–Vitter model):");
    println!("  scans        : {}", report.io.scans);
    println!("  blocks read  : {}", report.io.blocks_read);
    println!("  blocks write : {}", report.io.blocks_written);
    println!("  bytes read   : {}", report.io.bytes_read);
    println!("  bytes written: {}", report.io.bytes_written);

    // Sanity: identical to the in-memory algorithm.
    let exact = truss_decompose(&g);
    assert_eq!(decomposition.trussness(), exact.trussness());
    println!("\nverified: external result identical to in-memory TD-inmem+");
}

//! The paper's running example (Figure 2), decomposed by all four
//! algorithms, with the Example 3–5 artifacts (partitions, bounds, top-down
//! rounds) printed along the way.
//!
//! ```sh
//! cargo run --release --example figure2_walkthrough
//! ```

use truss_decomposition::core::bottom_up::{bottom_up_decompose, BottomUpConfig};
use truss_decomposition::core::decompose::{truss_decompose, truss_decompose_naive};
use truss_decomposition::core::top_down::{top_down_decompose, TopDownConfig};
use truss_decomposition::graph::generators::figures::{
    figure2_graph, figure2_partition, FIGURE2_NAMES,
};
use truss_decomposition::graph::subgraph;
use truss_decomposition::mapreduce::twiddling::mr_truss_decompose;
use truss_decomposition::storage::IoConfig;

fn name(v: u32) -> &'static str {
    FIGURE2_NAMES[v as usize]
}

fn main() {
    let g = figure2_graph();
    println!(
        "Figure 2 graph: {} vertices (a..l), {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // All four algorithms, one truth.
    let io = IoConfig::with_budget(1 << 20);
    let a1 = truss_decompose_naive(&g);
    let a2 = truss_decompose(&g);
    let (bu, _) = bottom_up_decompose(&g, &BottomUpConfig::new(io)).unwrap();
    let (td, _) = top_down_decompose(&g, &TopDownConfig::new(io)).unwrap();
    let td = td.to_decomposition(&g).unwrap();
    let (mr, _) = mr_truss_decompose(&g, io).unwrap();
    assert_eq!(a1.trussness(), a2.trussness());
    assert_eq!(a2.trussness(), bu.trussness());
    assert_eq!(a2.trussness(), td.trussness());
    assert_eq!(a2.trussness(), mr.trussness());
    println!("TD-inmem, TD-inmem+, TD-bottomup, TD-topdown and TD-MR all agree.\n");

    println!("k-classes (Example 2):");
    for (k, edges) in a2.classes_as_edges(&g) {
        let pretty: Vec<String> = edges
            .iter()
            .map(|e| format!("({},{})", name(e.u), name(e.v)))
            .collect();
        println!("  Φ{k}: {}", pretty.join(" "));
    }

    println!("\nExample 3 — the fixed partition P1={{a,b,c,l}} P2={{d,e,f,g}} P3={{h,i,j,k}}:");
    for (i, part) in figure2_partition().iter().enumerate() {
        let ns = subgraph::neighborhood(&g, part);
        let local = truss_decompose(&ns.sub.graph);
        let mut per_class: std::collections::BTreeMap<u32, Vec<String>> = Default::default();
        for (id, e) in ns.sub.graph.iter_edges() {
            let p = ns.sub.parent_edge(e);
            per_class
                .entry(local.edge_trussness(id))
                .or_default()
                .push(format!("({},{})", name(p.u), name(p.v)));
        }
        print!("  NS(P{}):", i + 1);
        for (k, edges) in per_class {
            print!("  Φ{k}(P{})={{{}}}", i + 1, edges.join(" "));
        }
        println!();
    }

    println!("\nExample 5 — top-down with t = 2 computes exactly Φ5 and Φ4:");
    let mut cfg = TopDownConfig::new(io).top_t(2);
    cfg.use_kinit = false;
    let (top2, report) = top_down_decompose(&g, &cfg).unwrap();
    println!("  k_1st = {}, k_max = {}", report.k_first, top2.k_max);
    for (k, edges) in top2.classes.iter().rev() {
        let pretty: Vec<String> = edges
            .iter()
            .map(|e| format!("({},{})", name(e.u), name(e.v)))
            .collect();
        println!("  Φ{k} = {}", pretty.join(" "));
    }
}

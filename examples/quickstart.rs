//! Quickstart: build a graph, decompose it, inspect the k-classes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use truss_decomposition::core::truss::truss_subgraph;
use truss_decomposition::prelude::*;

fn main() {
    // A small social network: two friend groups bridged by one person.
    let mut b = GraphBuilder::new();
    // Group 1: a 5-clique {0..4}.
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            b.add_edge(u, v);
        }
    }
    // Group 2: a 4-clique {4..7} sharing member 4.
    for u in 4..8u32 {
        for v in (u + 1)..8 {
            b.add_edge(u, v);
        }
    }
    // Some loose acquaintances.
    b.add_edge(0, 8).add_edge(8, 9).add_edge(9, 2);
    let g = b.build();

    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // The paper's Algorithm 2 (TD-inmem+): O(m^1.5).
    let decomposition = truss_decompose(&g);
    println!("k_max = {}", decomposition.k_max());
    for (k, size) in decomposition.class_sizes() {
        println!("Φ_{k}: {size} edges");
    }

    // Extract the strongest community: the k_max-truss.
    let core = truss_subgraph(&g, &decomposition, decomposition.k_max());
    println!(
        "the {}-truss has {} vertices and {} edges — the 5-clique",
        decomposition.k_max(),
        core.num_vertices(),
        core.num_edges()
    );

    // Per-edge truss numbers are directly addressable.
    let (a, bb) = (0u32, 1u32);
    let id = g.edge_id(a, bb).unwrap();
    println!(
        "trussness of ({a},{bb}) = {}",
        decomposition.edge_trussness(id)
    );
    assert_eq!(decomposition.k_max(), 5);
}

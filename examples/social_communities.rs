//! k-truss vs k-core on a social-network analogue (the §7.4 comparison).
//!
//! Demonstrates the paper's argument: the `k_max`-truss is a far smaller and
//! far more clustered "core" of the network than the `c_max`-core, making it
//! the better community seed.
//!
//! ```sh
//! cargo run --release --example social_communities
//! ```

use truss_decomposition::core::core_decomposition::{cmax_core_subgraph, core_decompose};
use truss_decomposition::core::truss::truss_subgraph;
use truss_decomposition::graph::generators::datasets::Dataset;
use truss_decomposition::graph::metrics::average_local_clustering;
use truss_decomposition::prelude::*;

fn main() {
    // A LiveJournal-like community-rich graph (scaled analogue).
    let g = Dataset::Lj.build_scaled(1.0 / 512.0, 42);
    println!(
        "LiveJournal analogue: {} vertices, {} edges, CC = {:.3}",
        g.num_vertices(),
        g.num_edges(),
        average_local_clustering(&g)
    );

    let decomposition = truss_decompose(&g);
    let cores = core_decompose(&g);

    let truss = truss_subgraph(&g, &decomposition, decomposition.k_max());
    let core = cmax_core_subgraph(&g, &cores);

    println!("\n              k_max-truss   c_max-core");
    println!(
        "k             {:>11}   {:>10}",
        decomposition.k_max(),
        cores.c_max()
    );
    println!(
        "vertices      {:>11}   {:>10}",
        truss.num_vertices(),
        core.graph.num_vertices()
    );
    println!(
        "edges         {:>11}   {:>10}",
        truss.num_edges(),
        core.graph.num_edges()
    );
    println!(
        "clustering    {:>11.3}   {:>10.3}",
        average_local_clustering(&truss),
        average_local_clustering(&core.graph)
    );

    // The containment theorem: a k-truss is always inside the (k-1)-core.
    let k = decomposition.k_max();
    let in_truss: Vec<u32> = decomposition
        .truss_edge_ids(k)
        .iter()
        .flat_map(|&id| {
            let e = g.edge(id);
            [e.u, e.v]
        })
        .collect();
    assert!(
        in_truss.iter().all(|&v| cores.core_of(v) >= k - 1),
        "every k-truss vertex lies in the (k-1)-core"
    );
    println!(
        "\nverified: the {k}-truss is contained in the {}-core",
        k - 1
    );

    // Bound on the maximum clique (§7.4): ω(G) ≤ k_max, usually far tighter
    // than ω(G) ≤ c_max + 1.
    println!(
        "maximum-clique bound: ω ≤ {} (via truss)  vs  ω ≤ {} (via core)",
        decomposition.k_max(),
        cores.c_max() + 1
    );
}

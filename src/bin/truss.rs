//! `truss` — command-line truss decomposition.
//!
//! ```text
//! truss decompose [--algo inmem|inmem+|bottomup|topdown|mr|parallel]
//!                 [--memory BYTES] [--threads N] [--scratch DIR]
//!                 [--report json] <input.snap>
//! truss ktruss --k K <input.snap>
//! truss topt --t T [--memory BYTES] <input.snap>
//! truss stats <input.snap>
//! truss generate --dataset NAME [--scale F] [--seed S] <output.snap>
//! ```
//!
//! Inputs are SNAP-style edge lists (`u v` per line, `#` comments) or the
//! binary format (by `.bin` extension). Decomposition output is TSV
//! `u <tab> v <tab> trussness` on stdout; diagnostics go to stderr. With
//! `--report json`, the engine's [`EngineReport`](truss_decomposition::engine::EngineReport)
//! is appended to stdout as one final JSON line after the TSV.
//!
//! `decompose` dispatches through the
//! [`TrussEngine`](truss_decomposition::engine::TrussEngine) registry —
//! adding an engine to `truss_decomposition::engine::registry()` makes it
//! available here without CLI changes.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use truss_decomposition::core::top_down::{top_down_decompose, TopDownConfig};
use truss_decomposition::core::TrussDecomposition;
use truss_decomposition::engine::{registry, AlgorithmKind, EngineConfig, EngineInput};
use truss_decomposition::graph::generators::datasets::dataset_by_name;
use truss_decomposition::graph::metrics::{average_local_clustering, degree_stats};
use truss_decomposition::graph::{io as gio, CsrGraph};
use truss_decomposition::prelude::truss_decompose;
use truss_decomposition::storage::IoConfig;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  truss decompose [--algo inmem|inmem+|bottomup|topdown|mr|parallel]
                  [--memory BYTES] [--threads N] [--scratch DIR]
                  [--report json] <input>
  truss ktruss --k K <input>
  truss topt --t T [--memory BYTES] <input>
  truss stats <input>
  truss generate --dataset NAME [--scale F] [--seed S] <output>
inputs: SNAP text edge lists, or the binary format for *.bin paths
--threads N sets the parallel engine's worker count (serial engines run 1)
--report json appends the engine report as one JSON line after the TSV";

/// Minimal flag parser: `--key value` pairs plus positional arguments.
struct Args {
    flags: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{key} expects a value"))?;
                flags.push((key.to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { flags, positional })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    fn input(&self) -> Result<&str, String> {
        self.positional
            .first()
            .map(String::as_str)
            .ok_or_else(|| "missing input path".to_string())
    }
}

fn run(raw: Vec<String>) -> Result<(), String> {
    let Some((cmd, rest)) = raw.split_first() else {
        return Err("missing subcommand".into());
    };
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "decompose" => cmd_decompose(&args),
        "ktruss" => cmd_ktruss(&args),
        "topt" => cmd_topt(&args),
        "stats" => cmd_stats(&args),
        "generate" => cmd_generate(&args),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let g = if path.ends_with(".bin") {
        gio::read_binary(file).map_err(|e| format!("{path}: {e}"))?
    } else {
        gio::read_snap(file).map_err(|e| format!("{path}: {e}"))?
    };
    eprintln!(
        "loaded {path}: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
    Ok(g)
}

/// The I/O model for `g`: `EngineConfig::sized_for`'s default with an
/// optional `--memory` override, clamped the same way the engines clamp.
fn io_config(args: &Args, g: &CsrGraph) -> Result<IoConfig, String> {
    let mut config = EngineConfig::sized_for(g);
    if let Some(budget) = args.get_parsed::<usize>("memory")? {
        config.io = EngineConfig::with_budget(budget).io;
    }
    Ok(config.effective_io(g))
}

fn print_decomposition(g: &CsrGraph, d: &TrussDecomposition) -> Result<(), String> {
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for (id, e) in g.iter_edges() {
        writeln!(out, "{}\t{}\t{}", e.u, e.v, d.edge_trussness(id)).map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())?;
    eprintln!("k_max = {}", d.k_max());
    for (k, size) in d.class_sizes() {
        eprintln!("  Φ_{k}: {size} edges");
    }
    Ok(())
}

/// `decompose` flags that can be validated before the input is loaded.
struct DecomposeFlags {
    json_report: bool,
    memory: Option<usize>,
    threads: Option<usize>,
    scratch: Option<PathBuf>,
}

impl DecomposeFlags {
    fn parse(args: &Args) -> Result<Self, String> {
        let json_report = match args.get("report") {
            None => false,
            Some("json") => true,
            Some(other) => {
                return Err(format!("unknown --report format {other:?} (expected json)"))
            }
        };
        let threads = args.get_parsed::<usize>("threads")?;
        if threads == Some(0) {
            return Err("--threads must be at least 1".into());
        }
        Ok(DecomposeFlags {
            json_report,
            memory: args.get_parsed("memory")?,
            threads,
            scratch: args.get("scratch").map(PathBuf::from),
        })
    }

    /// Engine configuration for `g`. Support stats cost an extra O(m^1.5)
    /// pass, so they are collected only when the report is requested; the
    /// engines clamp the budget via `EngineConfig::effective_io`.
    fn engine_config(&self, g: &CsrGraph) -> EngineConfig {
        let mut config = EngineConfig::sized_for(g);
        if let Some(budget) = self.memory {
            config.io = EngineConfig::with_budget(budget).io;
        }
        if let Some(threads) = self.threads {
            config.threads = threads;
        }
        config.scratch_dir = self.scratch.clone();
        config.collect_support_stats = self.json_report;
        config
    }
}

fn cmd_decompose(args: &Args) -> Result<(), String> {
    // Validate every flag before the (possibly long) load and run.
    let flags = DecomposeFlags::parse(args)?;
    let algo = args.get("algo").unwrap_or("inmem+");
    let engines = registry();
    let engine = engines.by_name(algo).ok_or_else(|| {
        let known: Vec<&str> = AlgorithmKind::all().map(AlgorithmKind::name).to_vec();
        format!("unknown --algo {algo:?} (known: {})", known.join(", "))
    })?;
    let g = load_graph(args.input()?)?;
    let config = flags.engine_config(&g);
    let (d, report) = engine
        .run(EngineInput::Graph(&g), &config)
        .map_err(|e| e.to_string())?;
    print_decomposition(&g, &d)?;
    eprintln!(
        "{}: {:.3}s, {} thread(s), peak memory ~{} bytes, {} blocks of I/O",
        engine.name(),
        report.wall_time.as_secs_f64(),
        report.threads_used,
        report.peak_memory_estimate,
        report.io.total_blocks()
    );
    if flags.json_report {
        println!("{}", report.to_json());
    }
    Ok(())
}

fn cmd_ktruss(args: &Args) -> Result<(), String> {
    let k: u32 = args.get_parsed("k")?.ok_or("--k is required")?;
    if k < 2 {
        return Err("--k must be at least 2".into());
    }
    let g = load_graph(args.input()?)?;
    let ids = truss_decomposition::core::truss::peel_to_k_truss(&g, k);
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for id in &ids {
        let e = g.edge(*id);
        writeln!(out, "{}\t{}", e.u, e.v).map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())?;
    eprintln!("{}-truss: {} edges", k, ids.len());
    Ok(())
}

fn cmd_topt(args: &Args) -> Result<(), String> {
    let t: u32 = args.get_parsed("t")?.ok_or("--t is required")?;
    let g = load_graph(args.input()?)?;
    let io = io_config(args, &g)?;
    let (res, report) =
        top_down_decompose(&g, &TopDownConfig::new(io).top_t(t)).map_err(|e| e.to_string())?;
    eprintln!(
        "k_max = {}, k_1st = {}, {} rounds",
        res.k_max, report.k_first, report.rounds
    );
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for (kk, edges) in res.classes.iter().rev() {
        for e in edges {
            writeln!(out, "{}\t{}\t{}", e.u, e.v, kk).map_err(|e| e.to_string())?;
        }
        eprintln!("  Φ_{kk}: {} edges", edges.len());
    }
    out.flush().map_err(|e| e.to_string())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let g = load_graph(args.input()?)?;
    let ds = degree_stats(&g);
    let d = truss_decompose(&g);
    let cores = truss_decomposition::core::core_decomposition::core_decompose(&g);
    println!("vertices      {}", g.num_vertices());
    println!("edges         {}", g.num_edges());
    println!("max degree    {}", ds.max);
    println!("median degree {}", ds.median);
    println!("clustering    {:.4}", average_local_clustering(&g));
    println!("k_max (truss) {}", d.k_max());
    println!("c_max (core)  {}", cores.c_max());
    println!(
        "triangles     {}",
        truss_decomposition::triangle::triangle_count(&g)
    );
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let name = args.get("dataset").ok_or("--dataset is required")?;
    let dataset = dataset_by_name(name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let scale: f64 = args.get_parsed("scale")?.unwrap_or(1.0);
    let seed: u64 = args.get_parsed("seed")?.unwrap_or(0x5eed);
    let out_path = args.input()?;
    let g = dataset.build_scaled(dataset.spec().default_scale * scale, seed);
    let file = File::create(out_path).map_err(|e| format!("{out_path}: {e}"))?;
    if out_path.ends_with(".bin") {
        gio::write_binary(&g, file).map_err(|e| e.to_string())?;
    } else {
        gio::write_snap(&g, file).map_err(|e| e.to_string())?;
    }
    eprintln!(
        "wrote {out_path}: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

//! `truss` — command-line truss decomposition.
//!
//! ```text
//! truss decompose [--algo NAME] [--memory BYTES] [--threads N]
//!                 [--scratch DIR] [--report json] <input.snap>
//! truss index build [--algo NAME] [--memory BYTES] [--threads N]
//!                   [--scratch DIR] [--report json] --out INDEX <input>
//! truss index query [--query spectrum|ktruss|communities|edge]
//!                   [--k K] [--u A --v B] <index>
//! truss index update --delta FILE [--out INDEX] <index>
//! truss serve [--host H] [--port P] [--threads N]
//!             [--wal LOG [--compact-bytes N]] <index>
//! truss query [--remote HOST:PORT] [--query KIND] [--k K] [--u A --v B]
//!             [--delta FILE] [--base GEN] [--report json] [<index>]
//! truss log inspect <log>
//! truss log truncate <log>
//! truss convert [--to v1|v2] <input> <output>
//! truss ktruss --k K <input.snap>
//! truss topt --t T [--memory BYTES] <input.snap>
//! truss stats <input.snap>
//! truss generate --dataset NAME [--scale F] [--seed S] <output.snap>
//! ```
//!
//! Graph inputs are dispatched on their magic bytes: `TRUSSGR1` per-edge
//! binaries, `TRUSSGR2` zero-copy snapshots (memory-mapped in O(1), no
//! per-edge parsing — write them with `generate out.gr2` or `truss
//! convert`), anything else as a SNAP-style text edge list (`u v` per
//! line, `#` comments). Decomposition output is TSV
//! `u <tab> v <tab> trussness` on stdout; diagnostics go to stderr. With
//! `--report json`, the engine's [`EngineReport`](truss_decomposition::engine::EngineReport)
//! is appended to stdout as one final JSON line after the TSV.
//!
//! `truss convert` migrates graphs and indexes between the v1 record
//! formats and the v2 snapshots in either direction (auto-detecting what
//! the input is); `index build` writes v2 by default, `index query`
//! auto-detects and serves v2 via mmap, and `index update` rewrites in
//! the format it read unless `--format` says otherwise.
//!
//! `decompose` and `index build` dispatch through the
//! [`TrussEngine`](truss_decomposition::engine::TrussEngine) registry —
//! adding an engine to `truss_decomposition::engine::registry()` makes it
//! available here (including in the usage/error text, which lists the
//! registered engines dynamically) without CLI changes. `index build`
//! persists a [`TrussIndex`] in
//! the versioned `TRUSSIDX` format; `index query` serves k-truss,
//! community, spectrum and per-edge lookups from the saved file without
//! recomputing anything; `index update` applies a text edge-delta file
//! (`+ u v` / `- u v` lines) through the incremental maintenance layer.
//!
//! `truss serve` turns a saved index into a long-running TCP daemon
//! (concurrent readers, one writer applying deltas with atomic snapshot
//! rotation — see `truss_serve`), and `truss query` asks questions of a
//! local index file or, with `--remote`, of a running daemon. Both paths
//! evaluate and render through the same `truss_serve::{answer, render}`
//! functions, so their stdout is byte-identical for the same query on
//! the same snapshot; `index query` delegates there too.
//!
//! With `--wal LOG` the daemon runs in durable mode: every update is
//! appended to the `TRUSSLOG` delta log and fsync'd *before* it is
//! acknowledged, a background compaction folds log + snapshot into a
//! fresh v2 snapshot once the log passes `--compact-bytes`, and a
//! restart replays whatever the log holds past the snapshot on disk.
//! `truss log inspect` prints a log's header and records (diagnosing a
//! torn tail without touching the file); `truss log truncate` drops a
//! torn tail so the log is clean again. Both refuse mid-file corruption.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;
use truss_decomposition::core::index::IndexFormat;
use truss_decomposition::core::top_down::{top_down_decompose, TopDownConfig};
use truss_decomposition::core::TrussDecomposition;
use truss_decomposition::engine::{registry, EngineConfig, EngineInput, EngineRegistry};
use truss_decomposition::graph::generators::datasets::dataset_by_name;
use truss_decomposition::graph::metrics::{average_local_clustering, degree_stats};
use truss_decomposition::graph::{io as gio, CsrGraph};
use truss_decomposition::prelude::{truss_decompose, TrussIndex};
use truss_decomposition::serve::proto::GENERATION_ANY;
use truss_decomposition::serve::render::Rendered;
use truss_decomposition::serve::{self, answer, render, Client, Request, Server};
use truss_decomposition::storage::{self, FileKind, IoConfig, LoadMode};

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

/// The registered engine names, pipe-separated — derived from the live
/// registry so newly registered engines appear automatically.
fn algo_list(engines: &EngineRegistry) -> String {
    engines
        .kinds()
        .iter()
        .map(|k| k.name())
        .collect::<Vec<_>>()
        .join("|")
}

fn unknown_algo(engines: &EngineRegistry, algo: &str) -> String {
    format!("unknown --algo {algo:?} (known: {})", algo_list(engines))
}

fn usage() -> String {
    format!(
        "\
usage:
  truss decompose [--algo {algos}]
                  [--memory BYTES] [--threads N] [--scratch DIR]
                  [--report json] <input>
  truss index build [--algo …] [--memory …] [--threads …] [--scratch …]
                    [--report json] --out INDEX <input>
  truss index query [--query spectrum|ktruss|communities|edge]
                    [--k K] [--u A --v B] <index>
  truss index update --delta FILE [--out INDEX] [--format v1|v2] <index>
  truss serve [--host H] [--port P] [--threads N]
              [--wal LOG [--compact-bytes N]] <index>
  truss query [--remote HOST:PORT]
              [--query spectrum|ktruss|communities|edge|community-of|
                       update|status|shutdown]
              [--k K] [--u A --v B] [--delta FILE] [--base GEN]
              [--report json] [<index>]
  truss log inspect <log>
  truss log truncate <log>
  truss convert [--to v1|v2] <input> <output>
  truss ktruss --k K <input>
  truss topt --t T [--memory BYTES] <input>
  truss stats <input>
  truss generate --dataset NAME [--scale F] [--seed S] <output>
inputs: auto-detected by magic — TRUSSGR1 binaries, TRUSSGR2 zero-copy
  snapshots (mmap-served), SNAP text otherwise; generate picks the format
  from the extension (*.bin = v1 binary, *.gr2 = v2 snapshot, else SNAP)
--threads N sets the parallel engine's worker count (serial engines run 1)
--report json appends the engine report as one JSON line after the TSV
--format/--to pick an on-disk format: v1 record files or v2 snapshots
  (index build defaults to v2; index update rewrites what it read)
delta files: one op per line (`+ u v` insert, `- u v` remove, `#` comments)
serve: every reply carries (generation, checksum) identity; SIGTERM/ctrl-c
  drains in-flight requests and exits 0
  --wal LOG appends every update to a durable TRUSSLOG delta log (fsync
  before ack, group commit) and replays it on restart; --compact-bytes N
  folds log+snapshot into a fresh snapshot once the log passes N bytes
query: reads a local <index> file, or with --remote asks a running daemon
  (update/status/shutdown are remote-only; --base pins an update's
  expected generation, default: any; --report json prints `--query
  status` as one JSON line instead of text)
log: inspect prints a TRUSSLOG's header, records, and torn-tail bytes;
  truncate drops a torn tail in place (both refuse mid-file corruption)",
        algos = algo_list(&registry())
    )
}

/// Minimal flag parser: `--key value` pairs plus positional arguments.
struct Args {
    flags: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{key} expects a value"))?;
                flags.push((key.to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { flags, positional })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    fn input(&self) -> Result<&str, String> {
        self.positional
            .first()
            .map(String::as_str)
            .ok_or_else(|| "missing input path".to_string())
    }
}

fn run(raw: Vec<String>) -> Result<(), String> {
    let Some((cmd, rest)) = raw.split_first() else {
        return Err("missing subcommand".into());
    };
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "decompose" => cmd_decompose(&args),
        "index" => cmd_index(rest),
        "serve" => cmd_serve(&args),
        "query" => cmd_query(&args),
        "log" => cmd_log(rest),
        "convert" => cmd_convert(&args),
        "ktruss" => cmd_ktruss(&args),
        "topt" => cmd_topt(&args),
        "stats" => cmd_stats(&args),
        "generate" => cmd_generate(&args),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn cmd_index(rest: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = rest.split_first() else {
        return Err("index expects a subcommand: build, query or update".into());
    };
    let args = Args::parse(rest)?;
    match sub.as_str() {
        "build" => cmd_index_build(&args),
        "query" => cmd_index_query(&args),
        "update" => cmd_index_update(&args),
        other => Err(format!(
            "unknown index subcommand {other:?} (expected build, query or update)"
        )),
    }
}

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    let g = storage::load_graph_auto(Path::new(path), LoadMode::Auto)
        .map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "loaded {path}: {} vertices, {} edges{}",
        g.num_vertices(),
        g.num_edges(),
        if g.is_mapped() { " (mmap)" } else { "" }
    );
    Ok(g)
}

/// The I/O model for `g`: `EngineConfig::sized_for`'s default with an
/// optional `--memory` override, clamped the same way the engines clamp.
fn io_config(args: &Args, g: &CsrGraph) -> Result<IoConfig, String> {
    let mut config = EngineConfig::sized_for(g);
    if let Some(budget) = args.get_parsed::<usize>("memory")? {
        config.io = EngineConfig::with_budget(budget).io;
    }
    Ok(config.effective_io(g))
}

fn print_decomposition(g: &CsrGraph, d: &TrussDecomposition) -> Result<(), String> {
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for (id, e) in g.iter_edges() {
        writeln!(out, "{}\t{}\t{}", e.u, e.v, d.edge_trussness(id)).map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())?;
    eprintln!("k_max = {}", d.k_max());
    for (k, size) in d.class_sizes() {
        eprintln!("  Φ_{k}: {size} edges");
    }
    Ok(())
}

/// `decompose` flags that can be validated before the input is loaded.
struct DecomposeFlags {
    json_report: bool,
    memory: Option<usize>,
    threads: Option<usize>,
    scratch: Option<PathBuf>,
}

impl DecomposeFlags {
    fn parse(args: &Args) -> Result<Self, String> {
        let json_report = match args.get("report") {
            None => false,
            Some("json") => true,
            Some(other) => {
                return Err(format!("unknown --report format {other:?} (expected json)"))
            }
        };
        let threads = args.get_parsed::<usize>("threads")?;
        if threads == Some(0) {
            return Err("--threads must be at least 1".into());
        }
        Ok(DecomposeFlags {
            json_report,
            memory: args.get_parsed("memory")?,
            threads,
            scratch: args.get("scratch").map(PathBuf::from),
        })
    }

    /// Engine configuration for `g`. Support stats cost an extra O(m^1.5)
    /// pass, so they are collected only when the report is requested; the
    /// engines clamp the budget via `EngineConfig::effective_io`.
    fn engine_config(&self, g: &CsrGraph) -> EngineConfig {
        let mut config = EngineConfig::sized_for(g);
        if let Some(budget) = self.memory {
            config.io = EngineConfig::with_budget(budget).io;
        }
        if let Some(threads) = self.threads {
            config.threads = threads;
        }
        config.scratch_dir = self.scratch.clone();
        config.collect_support_stats = self.json_report;
        config
    }
}

fn cmd_decompose(args: &Args) -> Result<(), String> {
    // Validate every flag before the (possibly long) load and run.
    let flags = DecomposeFlags::parse(args)?;
    let algo = args.get("algo").unwrap_or("inmem+");
    let engines = registry();
    let engine = engines
        .by_name(algo)
        .ok_or_else(|| unknown_algo(&engines, algo))?;
    let g = load_graph(args.input()?)?;
    let config = flags.engine_config(&g);
    let (d, report) = engine
        .run(EngineInput::Graph(&g), &config)
        .map_err(|e| e.to_string())?;
    print_decomposition(&g, &d)?;
    eprintln!(
        "{}: {:.3}s, {} thread(s), peak memory ~{} bytes, {} blocks of I/O",
        engine.name(),
        report.wall_time.as_secs_f64(),
        report.threads_used,
        report.peak_memory_estimate,
        report.io.total_blocks()
    );
    if flags.json_report {
        println!("{}", report.to_json());
    }
    Ok(())
}

/// Saves atomically through [`storage::atomic_replace`]: write a sibling
/// temp file, fsync it, rename it over the target, fsync the parent
/// directory — a failed or interrupted write never destroys an existing
/// index (`index update` defaults to saving in place), a crash right
/// after the rename cannot lose the new bytes, and live mmap readers of
/// the old file keep their pages (MAP_PRIVATE survives the replace).
fn save_index_atomic(index: &TrussIndex, out: &str, format: IndexFormat) -> Result<(), String> {
    storage::atomic_replace(Path::new(out), "index-save", |w| {
        index
            .write_as(w, format)
            .map_err(|e| std::io::Error::other(e.to_string()))
    })
    .map_err(|e| format!("{out}: {e}"))
}

/// Parses `--format` (or, for `convert`, `--to`) into an index/graph
/// format revision.
fn parse_format(args: &Args, key: &str) -> Result<Option<IndexFormat>, String> {
    match args.get(key) {
        None => Ok(None),
        Some(v) => IndexFormat::parse(v)
            .map(Some)
            .ok_or_else(|| format!("unknown --{key} {v:?} (expected v1 or v2)")),
    }
}

fn cmd_index_build(args: &Args) -> Result<(), String> {
    let flags = DecomposeFlags::parse(args)?;
    let format = parse_format(args, "format")?.unwrap_or(IndexFormat::V2);
    let out = args.get("out").ok_or("--out is required")?;
    let algo = args.get("algo").unwrap_or("inmem+");
    let engines = registry();
    let engine = engines
        .by_name(algo)
        .ok_or_else(|| unknown_algo(&engines, algo))?;
    let g = load_graph(args.input()?)?;
    let config = flags.engine_config(&g);
    let (index, report) = engine
        .run(EngineInput::Graph(&g), &config)
        .map(|(d, report)| (TrussIndex::from_parts(g, d), report))
        .map_err(|e| e.to_string())?;
    save_index_atomic(&index, out, format)?;
    eprintln!(
        "wrote index {out} ({format}): {} vertices, {} edges, k_max = {} ({}: {:.3}s)",
        index.num_vertices(),
        index.num_edges(),
        index.max_k(),
        engine.name(),
        report.wall_time.as_secs_f64(),
    );
    if flags.json_report {
        println!("{}", report.to_json());
    }
    Ok(())
}

fn load_index(path: &str) -> Result<(TrussIndex, IndexFormat), String> {
    let (index, format) = TrussIndex::load_with(Path::new(path), LoadMode::Auto)
        .map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "loaded index {path} ({format}): {} vertices, {} edges, k_max = {}{}",
        index.num_vertices(),
        index.num_edges(),
        index.max_k(),
        if index.mapped_bytes() > 0 {
            " (mmap)"
        } else {
            ""
        }
    );
    Ok((index, format))
}

/// Builds the wire-level request for a `--query` kind from the shared
/// flag surface (`--k`, `--u`/`--v`, `--delta`, `--base`). Used by
/// `truss query` (local and `--remote`) and the legacy `index query`.
fn build_request(args: &Args, what: &str) -> Result<Request, String> {
    let require_k = || -> Result<u32, String> {
        args.get_parsed("k")?
            .ok_or_else(|| format!("--k is required for --query {what}"))
    };
    match what {
        "spectrum" => Ok(Request::Spectrum),
        "ktruss" => Ok(Request::KTruss { k: require_k()? }),
        "communities" => Ok(Request::Communities { k: require_k()? }),
        "edge" => Ok(Request::Edge {
            u: args.get_parsed("u")?.ok_or("--u is required")?,
            v: args.get_parsed("v")?.ok_or("--v is required")?,
        }),
        "community-of" => Ok(Request::CommunityOf {
            v: args.get_parsed("v")?.ok_or("--v is required")?,
            k: require_k()?,
        }),
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        "update" => {
            let delta_path = args.get("delta").ok_or("--delta is required")?;
            let file = File::open(delta_path).map_err(|e| format!("{delta_path}: {e}"))?;
            let delta = gio::read_delta(file).map_err(|e| format!("{delta_path}: {e}"))?;
            Ok(Request::Update {
                base_generation: args.get_parsed("base")?.unwrap_or(GENERATION_ANY),
                delta,
            })
        }
        other => Err(format!("unknown --query {other:?}")),
    }
}

/// Prints a rendered response the way every query path does: data to
/// stdout, diagnostics to stderr.
fn print_rendered(r: &Rendered) -> Result<(), String> {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    out.write_all(r.stdout.as_bytes())
        .and_then(|()| out.flush())
        .map_err(|e| e.to_string())?;
    eprint!("{}", r.diag);
    Ok(())
}

fn cmd_index_query(args: &Args) -> Result<(), String> {
    let what = args.get("query").unwrap_or("spectrum");
    if !matches!(what, "spectrum" | "ktruss" | "communities" | "edge") {
        return Err(format!(
            "unknown --query {what:?} (expected spectrum, ktruss, communities or edge)"
        ));
    }
    let req = build_request(args, what)?;
    let (index, _) = load_index(args.input()?)?;
    let resp = answer(&index, &req).map_err(|e| e.message)?;
    print_rendered(&render(&resp))
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let input = args.input()?;
    let host = args.get("host").unwrap_or("127.0.0.1");
    let port: u16 = args.get_parsed("port")?.unwrap_or(7470);
    let threads: usize = args.get_parsed("threads")?.unwrap_or(4);
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let wal = match args.get("wal") {
        Some(path) => {
            let mut wal = serve::server::WalConfig::new(PathBuf::from(path));
            if let Some(bytes) = args.get_parsed::<u64>("compact-bytes")? {
                if bytes == 0 {
                    return Err("--compact-bytes must be at least 1".into());
                }
                wal.compact_bytes = bytes;
            }
            Some(wal)
        }
        None => {
            if args.get("compact-bytes").is_some() {
                return Err("--compact-bytes needs --wal LOG".into());
            }
            None
        }
    };
    serve::signal::install();
    let config = serve::ServeConfig {
        threads,
        snapshot_path: None,
        wal,
    };
    let handle = Server::open_with(Path::new(input), &format!("{host}:{port}"), config)?;
    let (generation, checksum) = handle.generation();
    eprintln!(
        "serving {input} on {} with {threads} reader thread(s), \
         generation {generation}, checksum {checksum:016x}",
        handle.addr()
    );
    let status = handle.status();
    if status.wal_enabled {
        eprintln!(
            "wal: {} record(s) replayed, {} torn byte(s) truncated",
            status.recovery_records_replayed, status.recovery_bytes_truncated
        );
    }
    // The daemon's threads do all the work; this loop only watches for
    // SIGTERM/ctrl-c (or a remote shutdown having drained everything).
    while !serve::signal::terminated() && !handle.is_finished() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let served = handle.served();
    handle.shutdown();
    eprintln!("shutdown: {served} request(s) served");
    Ok(())
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let what = args.get("query").unwrap_or("spectrum");
    let json_report = match args.get("report") {
        None => false,
        Some("json") => true,
        Some(other) => return Err(format!("unknown --report format {other:?} (expected json)")),
    };
    if json_report && what != "status" {
        return Err("--report json only applies to --query status".into());
    }
    let req = build_request(args, what)?;
    match args.get("remote") {
        Some(addr) => {
            let mut client = Client::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
            let reply = client.request(&req).map_err(|e| format!("{addr}: {e}"))?;
            // Identity of the artifact that answered, on stderr so the
            // data on stdout stays byte-identical to a local query of
            // the same snapshot.
            eprintln!(
                "generation {} checksum {:016x}",
                reply.generation, reply.checksum
            );
            match reply.body {
                Ok(serve::Response::Status(s)) if json_report => {
                    println!("{}", s.to_json(reply.generation, reply.checksum));
                    Ok(())
                }
                Ok(resp) => print_rendered(&render(&resp)),
                Err(e) => Err(format!("server: {} [{:?}]", e.message, e.code)),
            }
        }
        None => {
            if matches!(
                req,
                Request::Update { .. } | Request::Status | Request::Shutdown
            ) {
                return Err(format!("--query {what} needs --remote HOST:PORT"));
            }
            let (index, _) = load_index(args.input()?)?;
            let resp = answer(&index, &req).map_err(|e| e.message)?;
            print_rendered(&render(&resp))
        }
    }
}

fn cmd_log(rest: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = rest.split_first() else {
        return Err("log expects a subcommand: inspect or truncate".into());
    };
    let args = Args::parse(rest)?;
    match sub.as_str() {
        "inspect" => cmd_log_inspect(&args),
        "truncate" => cmd_log_truncate(&args),
        other => Err(format!(
            "unknown log subcommand {other:?} (expected inspect or truncate)"
        )),
    }
}

/// Scans a TRUSSLOG, mapping mid-file corruption to a hard error (the
/// same typed refusal the daemon gives) while a torn tail scans fine.
fn scan_log(path: &str) -> Result<storage::WalScan, String> {
    storage::scan_wal(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

fn cmd_log_inspect(args: &Args) -> Result<(), String> {
    let path = args.input()?;
    let scan = scan_log(path)?;
    println!("base_generation {}", scan.header.base_generation);
    println!("base_checksum   {:016x}", scan.header.base_checksum);
    println!("records         {}", scan.records.len());
    for r in &scan.records {
        match &r.payload {
            storage::WalPayload::Delta(d) => println!(
                "  seq {:<6} offset {:<10} delta +{} -{}",
                r.seq,
                r.offset,
                d.insert.len(),
                d.remove.len()
            ),
            storage::WalPayload::Compact { checksum } => println!(
                "  seq {:<6} offset {:<10} compact checksum {:016x}",
                r.seq, r.offset, checksum
            ),
        }
    }
    println!("valid_len       {}", scan.valid_len);
    println!("file_len        {}", scan.file_len);
    println!("torn_bytes      {}", scan.torn_bytes());
    if scan.torn_bytes() > 0 {
        eprintln!(
            "torn tail: {} byte(s) past the last valid record \
             (`truss log truncate` drops them)",
            scan.torn_bytes()
        );
    }
    Ok(())
}

fn cmd_log_truncate(args: &Args) -> Result<(), String> {
    let path = args.input()?;
    let scan = scan_log(path)?;
    let torn = scan.torn_bytes();
    if torn == 0 {
        eprintln!(
            "{path}: clean ({} record(s)), nothing to truncate",
            scan.records.len()
        );
        return Ok(());
    }
    storage::truncate_torn_tail(Path::new(path), &scan).map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "{path}: dropped {torn} torn byte(s), {} valid record(s) kept",
        scan.records.len()
    );
    Ok(())
}

fn cmd_index_update(args: &Args) -> Result<(), String> {
    let delta_path = args.get("delta").ok_or("--delta is required")?;
    let explicit_format = parse_format(args, "format")?;
    let input = args.input()?;
    let out = args.get("out").unwrap_or(input);
    let file = File::open(delta_path).map_err(|e| format!("{delta_path}: {e}"))?;
    let delta = gio::read_delta(file).map_err(|e| format!("{delta_path}: {e}"))?;
    let (mut index, read_format) = load_index(input)?;
    // Rewrite in the format the index was read in — a v1 consumer's file
    // stays v1 under maintenance — unless --format says to migrate.
    let format = explicit_format.unwrap_or(read_format);
    let start = Instant::now();
    let stats = index.apply(&delta);
    let elapsed = start.elapsed();
    save_index_atomic(&index, out, format)?;
    eprintln!(
        "applied {delta_path}: +{} -{} ({} skipped), \
         {} edges seeded, {} relaxations ({} lowered), {:.3}s",
        stats.inserted,
        stats.removed,
        stats.skipped,
        stats.seeded,
        stats.settled,
        stats.lowered,
        elapsed.as_secs_f64(),
    );
    eprintln!(
        "wrote index {out} ({format}): {} vertices, {} edges, k_max = {}",
        index.num_vertices(),
        index.num_edges(),
        index.max_k()
    );
    Ok(())
}

/// `truss convert`: migrate a graph or index file between the v1 record
/// formats and the v2 zero-copy snapshots, auto-detecting what the input
/// is from its magic. v1 → v2 → v1 round trips are bit-identical.
fn cmd_convert(args: &Args) -> Result<(), String> {
    let to = parse_format(args, "to")?.unwrap_or(IndexFormat::V2);
    let input = args.input()?;
    let out = args
        .positional
        .get(1)
        .ok_or("convert expects <input> <output>")?;
    let kind = storage::sniff_file(Path::new(input)).map_err(|e| format!("{input}: {e}"))?;
    let describe = match kind {
        // SNAP text (`Other`) also converts — it loads through the same
        // auto-detecting graph path.
        FileKind::GraphV1 | FileKind::GraphV2 | FileKind::Other => {
            let g = load_graph(input)?;
            // Atomic replace, like the index path: an in-place convert
            // must not truncate a file the loaded graph may still be
            // memory-mapping, a failed write must not leave a partial
            // output behind, and the rename is made durable by the
            // parent-directory fsync inside the helper.
            storage::atomic_replace(Path::new(out.as_str()), "convert", |w| match to {
                IndexFormat::V1 => {
                    gio::write_binary(&g, w).map_err(|e| std::io::Error::other(e.to_string()))
                }
                IndexFormat::V2 => storage::write_graph_snapshot(&g, w)
                    .map(|_| ())
                    .map_err(|e| std::io::Error::other(e.to_string())),
            })
            .map_err(|e| format!("{out}: {e}"))?;
            format!(
                "graph, {} vertices, {} edges",
                g.num_vertices(),
                g.num_edges()
            )
        }
        FileKind::IndexV1 | FileKind::IndexV2 => {
            let (index, _) = load_index(input)?;
            save_index_atomic(&index, out, to)?;
            format!(
                "index, {} vertices, {} edges, k_max = {}",
                index.num_vertices(),
                index.num_edges(),
                index.max_k()
            )
        }
    };
    eprintln!("wrote {out} ({to}): {describe}");
    Ok(())
}

fn cmd_ktruss(args: &Args) -> Result<(), String> {
    let k: u32 = args.get_parsed("k")?.ok_or("--k is required")?;
    if k < 2 {
        return Err("--k must be at least 2".into());
    }
    let g = load_graph(args.input()?)?;
    let ids = truss_decomposition::core::truss::peel_to_k_truss(&g, k);
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for id in &ids {
        let e = g.edge(*id);
        writeln!(out, "{}\t{}", e.u, e.v).map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())?;
    eprintln!("{}-truss: {} edges", k, ids.len());
    Ok(())
}

fn cmd_topt(args: &Args) -> Result<(), String> {
    let t: u32 = args.get_parsed("t")?.ok_or("--t is required")?;
    let g = load_graph(args.input()?)?;
    let io = io_config(args, &g)?;
    let (res, report) =
        top_down_decompose(&g, &TopDownConfig::new(io).top_t(t)).map_err(|e| e.to_string())?;
    eprintln!(
        "k_max = {}, k_1st = {}, {} rounds",
        res.k_max, report.k_first, report.rounds
    );
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for (kk, edges) in res.classes.iter().rev() {
        for e in edges {
            writeln!(out, "{}\t{}\t{}", e.u, e.v, kk).map_err(|e| e.to_string())?;
        }
        eprintln!("  Φ_{kk}: {} edges", edges.len());
    }
    out.flush().map_err(|e| e.to_string())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let g = load_graph(args.input()?)?;
    let ds = degree_stats(&g);
    let d = truss_decompose(&g);
    let cores = truss_decomposition::core::core_decomposition::core_decompose(&g);
    println!("vertices      {}", g.num_vertices());
    println!("edges         {}", g.num_edges());
    println!("max degree    {}", ds.max);
    println!("median degree {}", ds.median);
    println!("clustering    {:.4}", average_local_clustering(&g));
    println!("k_max (truss) {}", d.k_max());
    println!("c_max (core)  {}", cores.c_max());
    println!(
        "triangles     {}",
        truss_decomposition::triangle::triangle_count(&g)
    );
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let name = args.get("dataset").ok_or("--dataset is required")?;
    let dataset = dataset_by_name(name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let scale: f64 = args.get_parsed("scale")?.unwrap_or(1.0);
    let seed: u64 = args.get_parsed("seed")?.unwrap_or(0x5eed);
    let out_path = args.input()?;
    let g = dataset.build_scaled(dataset.spec().default_scale * scale, seed);
    let file = File::create(out_path).map_err(|e| format!("{out_path}: {e}"))?;
    if out_path.ends_with(".bin") {
        gio::write_binary(&g, file).map_err(|e| e.to_string())?;
    } else if out_path.ends_with(".gr2") {
        storage::write_graph_snapshot(&g, file).map_err(|e| e.to_string())?;
    } else {
        gio::write_snap(&g, file).map_err(|e| e.to_string())?;
    }
    eprintln!(
        "wrote {out_path}: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

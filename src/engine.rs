//! The fully-assembled engine registry: everything from
//! [`truss_core::engine`] plus the TD-MR baseline.
//!
//! `truss-mapreduce` depends on `truss-core`, so the core crate cannot
//! construct the MR engine itself; this facade module is where the
//! complete seven-engine set lives (the paper's five algorithms plus the
//! PKT-style parallel engine from `truss_core::parallel` and the
//! out-of-core engine from `truss_core::outofcore`). All consumers
//! (CLI, benches, tests) should obtain their registry here.

pub use truss_core::engine::*;
pub use truss_mapreduce::MrEngine;

/// The full registry: the six core engines (four serial + parallel +
/// out-of-core) plus TD-MR, covering every [`AlgorithmKind`].
pub fn registry() -> EngineRegistry {
    let mut r = EngineRegistry::core();
    r.register(Box::new(MrEngine));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_kind() {
        let r = registry();
        assert_eq!(r.len(), AlgorithmKind::all().len());
        for kind in AlgorithmKind::all() {
            assert!(r.get(kind).is_some(), "{kind} missing");
            assert!(r.by_name(kind.name()).is_some(), "{kind} not found by name");
        }
    }
}

//! # truss-decomposition
//!
//! A from-scratch Rust reproduction of *"Truss Decomposition in Massive
//! Networks"* (Jia Wang & James Cheng, PVLDB 5(9), 2012).
//!
//! The `k`-truss of a graph `G` is the largest subgraph in which every edge
//! is contained in at least `k − 2` triangles within the subgraph; *truss
//! decomposition* computes the `k`-truss for all `k`. This crate is a facade
//! re-exporting the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`graph`] | CSR graphs, generators, formats, metrics |
//! | [`storage`] | I/O cost model, disk edge lists, partitioners, external sort, mmap + the v2 zero-copy snapshot formats (`docs/FORMATS.md`) |
//! | [`triangle`] | triangle counting/listing (in-memory + external) |
//! | [`core`] | the paper's algorithms (TD-inmem, TD-inmem+, TD-bottomup, TD-topdown, k-core) plus the PKT-style parallel engine, its thread pool, and the persistent [`TrussIndex`](core::index::TrussIndex) with incremental edge updates |
//! | [`mapreduce`] | single-machine MapReduce engine + Cohen's TD-MR baseline |
//! | [`engine`] | the unified [`TrussEngine`](engine::TrussEngine) registry over all six algorithms |
//! | [`serve`] | the `truss serve` daemon: wire protocol, concurrent TCP server over `Arc`-swapped snapshot generations, client |
//!
//! See `docs/ARCHITECTURE.md` for the crate map and dataflow, and
//! `docs/ALGORITHMS.md` for an engine-by-engine guide.
//!
//! ## Quickstart
//!
//! ```
//! use truss_decomposition::prelude::*;
//!
//! // The paper's running example (Figure 2).
//! let g = truss_decomposition::graph::generators::figure2_graph();
//! let decomposition = truss_decompose(&g);
//! assert_eq!(decomposition.k_max(), 5);
//! // Every edge of the 5-class forms a clique on {a, b, c, d, e}.
//! assert_eq!(decomposition.class(5).len(), 10);
//! ```

pub use truss_core as core;
pub use truss_graph as graph;
pub use truss_mapreduce as mapreduce;
pub use truss_serve as serve;
pub use truss_storage as storage;
pub use truss_triangle as triangle;

pub mod engine;

/// Commonly used items.
pub mod prelude {
    pub use crate::engine::{
        registry, AlgorithmKind, EngineConfig, EngineInput, EngineReport, TrussEngine,
    };
    pub use truss_core::decompose::{truss_decompose, TrussDecomposition};
    pub use truss_core::index::{IndexFormat, TrussIndex, UpdateStats};
    pub use truss_graph::{CsrGraph, Edge, EdgeDelta, EdgeId, GraphBuilder, SectionBuf, VertexId};
    pub use truss_storage::LoadMode;
}

//! End-to-end tests of the `truss` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn truss_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_truss"))
}

fn temp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("truss-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Writes the Figure 2 graph as a SNAP file and returns the path.
fn figure2_file() -> PathBuf {
    let path = temp_file("figure2.snap");
    let g = truss_decomposition::graph::generators::figure2_graph();
    let f = std::fs::File::create(&path).unwrap();
    truss_decomposition::graph::io::write_snap(&g, f).unwrap();
    path
}

#[test]
fn decompose_outputs_tsv_with_trussness() {
    let input = figure2_file();
    for algo in ["inmem", "inmem+", "bottomup", "topdown"] {
        let out = truss_bin()
            .args(["decompose", "--algo", algo, input.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success(), "{algo}: {:?}", out);
        let stdout = String::from_utf8(out.stdout).unwrap();
        let lines: Vec<&str> = stdout.lines().collect();
        assert_eq!(lines.len(), 26, "{algo}: one line per edge");
        // Class sizes recoverable from the TSV.
        let fives = lines.iter().filter(|l| l.ends_with("\t5")).count();
        assert_eq!(fives, 10, "{algo}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("k_max = 5"), "{algo}: {stderr}");
    }
}

#[test]
fn ktruss_extracts_subgraph() {
    let input = figure2_file();
    let out = truss_bin()
        .args(["ktruss", "--k", "5", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.lines().count(), 10, "the K5");
}

#[test]
fn topt_reports_top_classes() {
    let input = figure2_file();
    let out = truss_bin()
        .args(["topt", "--t", "2", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("k_max = 5"), "{stderr}");
    assert!(stderr.contains("Φ_5: 10 edges"), "{stderr}");
}

#[test]
fn generate_then_stats_round_trip() {
    let path = temp_file("gen.snap");
    let out = truss_bin()
        .args([
            "generate",
            "--dataset",
            "p2p",
            "--scale",
            "0.02",
            "--seed",
            "7",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = truss_bin()
        .args(["stats", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("k_max"), "{stdout}");
    assert!(stdout.contains("triangles"), "{stdout}");
}

#[test]
fn binary_format_by_extension() {
    let path = temp_file("gen.bin");
    assert!(truss_bin()
        .args(["generate", "--dataset", "hep", "--scale", "0.01", path.to_str().unwrap()])
        .output()
        .unwrap()
        .status
        .success());
    let out = truss_bin()
        .args(["decompose", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
}

#[test]
fn errors_are_reported() {
    // Unknown subcommand.
    let out = truss_bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    // Missing input.
    let out = truss_bin().args(["decompose"]).output().unwrap();
    assert!(!out.status.success());
    // Nonexistent file.
    let out = truss_bin()
        .args(["decompose", "/nonexistent/graph.snap"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error"), "{stderr}");
    // Bad k.
    let input = figure2_file();
    let out = truss_bin()
        .args(["ktruss", "--k", "1", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

//! End-to-end tests of the `truss` CLI binary.

use std::path::PathBuf;
use std::process::Command;
use truss_decomposition::engine::AlgorithmKind;

fn truss_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_truss"))
}

/// Extracts an integer field from a one-line JSON object (the workspace
/// carries no JSON parser; the report format is flat and predictable).
fn json_u64(json: &str, field: &str) -> u64 {
    let key = format!("\"{field}\":");
    let rest = &json[json
        .find(&key)
        .unwrap_or_else(|| panic!("{field} in {json}"))
        + key.len()..];
    rest.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{field} not an integer in {json}"))
}

/// Extracts a float field from a one-line JSON object.
fn json_f64(json: &str, field: &str) -> f64 {
    let key = format!("\"{field}\":");
    let rest = &json[json
        .find(&key)
        .unwrap_or_else(|| panic!("{field} in {json}"))
        + key.len()..];
    rest.chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{field} not a number in {json}"))
}

fn temp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("truss-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Writes the Figure 2 graph as a SNAP file and returns the path.
fn figure2_file() -> PathBuf {
    let path = temp_file("figure2.snap");
    let g = truss_decomposition::graph::generators::figure2_graph();
    let f = std::fs::File::create(&path).unwrap();
    truss_decomposition::graph::io::write_snap(&g, f).unwrap();
    path
}

#[test]
fn decompose_outputs_tsv_with_trussness() {
    let input = figure2_file();
    // Every registered engine, not a hand-picked subset: the CLI dispatches
    // through the registry, so each kind's canonical name must work.
    for kind in AlgorithmKind::all() {
        let algo = kind.name();
        let out = truss_bin()
            .args(["decompose", "--algo", algo, input.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success(), "{algo}: {:?}", out);
        let stdout = String::from_utf8(out.stdout).unwrap();
        let lines: Vec<&str> = stdout.lines().collect();
        assert_eq!(lines.len(), 26, "{algo}: one line per edge");
        // TSV shape: u <tab> v <tab> trussness, all integers.
        for l in &lines {
            let cols: Vec<&str> = l.split('\t').collect();
            assert_eq!(cols.len(), 3, "{algo}: {l:?}");
            assert!(
                cols.iter().all(|c| c.parse::<u64>().is_ok()),
                "{algo}: {l:?}"
            );
        }
        // Class sizes recoverable from the TSV.
        let fives = lines.iter().filter(|l| l.ends_with("\t5")).count();
        assert_eq!(fives, 10, "{algo}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("k_max = 5"), "{algo}: {stderr}");
    }
}

#[test]
fn decompose_report_json_appends_engine_report() {
    let input = figure2_file();
    for kind in AlgorithmKind::all() {
        let algo = kind.name();
        let out = truss_bin()
            .args([
                "decompose",
                "--algo",
                algo,
                "--threads",
                "2",
                "--report",
                "json",
                input.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{algo}: {:?}", out);
        let stdout = String::from_utf8(out.stdout).unwrap();
        let lines: Vec<&str> = stdout.lines().collect();
        // 26 TSV edge lines plus the final JSON report line.
        assert_eq!(lines.len(), 27, "{algo}");
        let json = lines.last().unwrap();
        assert!(
            json.starts_with('{') && json.ends_with('}'),
            "{algo}: {json}"
        );
        assert!(
            json.contains(&format!("\"algorithm\":\"{algo}\"")),
            "{algo}: {json}"
        );
        assert_eq!(json_u64(json, "k_max"), 5, "{algo}");
        // The report records the *effective* thread count: the parallel
        // and out-of-core engines honor --threads 2, every serial engine
        // runs (and reports) 1.
        let expected_threads = if matches!(kind, AlgorithmKind::Parallel | AlgorithmKind::OutOfCore)
        {
            2
        } else {
            1
        };
        assert_eq!(
            json_u64(json, "threads_used"),
            expected_threads,
            "{algo}: {json}"
        );
        // Spill-pipeline metrics: the out-of-core engine reports byte
        // counters and the drain-overlap time; every other engine has no
        // spill pipeline and reports null.
        for key in ["spill_bytes_written", "spill_bytes_read"] {
            assert!(json.contains(&format!("\"{key}\":")), "{algo}: {json}");
        }
        if kind == AlgorithmKind::OutOfCore {
            let _ = json_u64(json, "spill_bytes_written");
            let _ = json_u64(json, "spill_bytes_read");
            let overlap = json_f64(json, "spill_drain_overlap_ms");
            assert!(overlap >= 0.0, "{algo}: {json}");
        } else {
            assert!(
                json.contains("\"spill_bytes_written\":null"),
                "{algo}: {json}"
            );
            assert!(json.contains("\"spill_bytes_read\":null"), "{algo}: {json}");
            assert!(
                json.contains("\"spill_drain_overlap_ms\":null"),
                "{algo}: {json}"
            );
        }
        // External engines do real disk I/O and report it; in-memory ones
        // never touch disk.
        let blocks = json_u64(json, "total_blocks");
        if kind.is_external() {
            assert!(blocks > 0, "{algo}: {json}");
        } else {
            assert_eq!(blocks, 0, "{algo}: {json}");
        }
        // Phase breakdown: the in-memory peeling engines split their wall
        // time into support-init (triangle) and peel; the external ones
        // interleave the phases and report null.
        assert!(json.contains("\"triangle_ms\":"), "{algo}: {json}");
        assert!(json.contains("\"peel_ms\":"), "{algo}: {json}");
        let phased = matches!(
            kind,
            AlgorithmKind::Inmem
                | AlgorithmKind::InmemPlus
                | AlgorithmKind::Parallel
                | AlgorithmKind::OutOfCore
        );
        if phased {
            let t = json_f64(json, "triangle_ms");
            let p = json_f64(json, "peel_ms");
            assert!(t >= 0.0 && p >= 0.0, "{algo}: {json}");
        } else {
            assert!(json.contains("\"triangle_ms\":null"), "{algo}: {json}");
            assert!(json.contains("\"peel_ms\":null"), "{algo}: {json}");
        }
        // Measured peak RSS: present for every engine; a real VmHWM delta
        // on Linux, null where /proc is unavailable.
        assert!(json.contains("\"peak_rss_bytes\":"), "{algo}: {json}");
        if cfg!(target_os = "linux") {
            let _ = json_u64(json, "peak_rss_bytes");
        }
        // Effective (possibly clamped) budget: the external engines run
        // under an explicit budget and surface what they actually used;
        // the in-memory engines have no budget to report.
        assert!(
            json.contains("\"effective_memory_budget\":"),
            "{algo}: {json}"
        );
        if kind.is_external() {
            let eff = json_u64(json, "effective_memory_budget");
            assert!(eff > 0, "{algo}: {json}");
        } else {
            assert!(
                json.contains("\"effective_memory_budget\":null"),
                "{algo}: {json}"
            );
        }
        // Durability metrics exist in every report for JSON-shape
        // stability, but only WAL-backed ingestion runs (repro_ingest)
        // populate them — a decomposition has no delta log.
        for field in [
            "wal_bytes_appended",
            "wal_fsyncs",
            "group_commit_batches",
            "recovery_records_replayed",
            "recovery_bytes_truncated",
        ] {
            assert!(
                json.contains(&format!("\"{field}\":null")),
                "{algo}: {json}"
            );
        }
        // Peel-phase counters are the parallel engine's own telemetry
        // (levels, bulk-synchronous sub-iterations, live-adjacency
        // compactions); every other engine reports null for all three.
        for field in ["peel_levels", "peel_sub_iterations", "peel_compactions"] {
            assert!(json.contains(&format!("\"{field}\":")), "{algo}: {json}");
        }
        if kind == AlgorithmKind::Parallel {
            // Figure 2 peels Φ2..Φ5: four non-empty levels, at least one
            // sub-iteration each; compactions may legitimately be zero.
            assert_eq!(json_u64(json, "peel_levels"), 4, "{algo}: {json}");
            assert!(json_u64(json, "peel_sub_iterations") >= 4, "{algo}: {json}");
            let _ = json_u64(json, "peel_compactions");
        } else {
            for field in ["peel_levels", "peel_sub_iterations", "peel_compactions"] {
                assert!(
                    json.contains(&format!("\"{field}\":null")),
                    "{algo}: {json}"
                );
            }
        }
    }
}

#[test]
fn parallel_engine_accepts_thread_ladder() {
    let input = figure2_file();
    let mut reference: Option<String> = None;
    for threads in ["1", "2", "4"] {
        let out = truss_bin()
            .args([
                "decompose",
                "--algo",
                "parallel",
                "--threads",
                threads,
                input.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{threads}: {out:?}");
        let stdout = String::from_utf8(out.stdout).unwrap();
        match &reference {
            Some(r) => assert_eq!(r, &stdout, "{threads} threads diverged"),
            None => reference = Some(stdout),
        }
    }
    // The alias from the literature works too.
    let out = truss_bin()
        .args(["decompose", "--algo", "pkt", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn decompose_flag_validation() {
    let input = figure2_file();
    let out = truss_bin()
        .args(["decompose", "--algo", "frobnicate", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown --algo"), "{stderr}");
    // The error lists the registered names.
    assert!(
        stderr.contains("topdown") && stderr.contains("mr"),
        "{stderr}"
    );

    let out = truss_bin()
        .args(["decompose", "--report", "xml", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = truss_bin()
        .args(["decompose", "--threads", "0", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn index_build_query_update_round_trip() {
    let input = figure2_file();
    let idx = temp_file("figure2.tix");

    // Build with an explicit engine choice.
    let out = truss_bin()
        .args([
            "index",
            "build",
            "--algo",
            "bottomup",
            "--out",
            idx.to_str().unwrap(),
            input.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("k_max = 5"), "{stderr}");

    // Spectrum query (the default) serves from the saved file.
    let out = truss_bin()
        .args(["index", "query", idx.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("k_max = 5"), "{stdout}");

    // k-truss extraction: the K5 at k = 5.
    let out = truss_bin()
        .args([
            "index",
            "query",
            "--query",
            "ktruss",
            "--k",
            "5",
            idx.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(String::from_utf8(out.stdout).unwrap().lines().count(), 10);

    // Communities: two components at k = 4, one line each.
    let out = truss_bin()
        .args([
            "index",
            "query",
            "--query",
            "communities",
            "--k",
            "4",
            idx.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(String::from_utf8(out.stdout).unwrap().lines().count(), 2);

    // Per-edge lookup.
    let out = truss_bin()
        .args([
            "index",
            "query",
            "--query",
            "edge",
            "--u",
            "0",
            "--v",
            "1",
            idx.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "5");

    // Apply a delta: drop a K5 edge, insert (e, h).
    let delta = temp_file("figure2.delta");
    std::fs::write(&delta, "# test delta\n- 0 1\n+ 4 7\n").unwrap();
    let idx2 = temp_file("figure2-updated.tix");
    let out = truss_bin()
        .args([
            "index",
            "update",
            "--delta",
            delta.to_str().unwrap(),
            "--out",
            idx2.to_str().unwrap(),
            idx.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("+1 -1"), "{stderr}");
    assert!(stderr.contains("k_max = 4"), "{stderr}");

    // The updated index answers accordingly; the original is untouched.
    let out = truss_bin()
        .args([
            "index",
            "query",
            "--query",
            "edge",
            "--u",
            "0",
            "--v",
            "1",
            idx2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "removed edge must not resolve");
    let out = truss_bin()
        .args([
            "index",
            "query",
            "--query",
            "edge",
            "--u",
            "4",
            "--v",
            "7",
            idx2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = truss_bin()
        .args([
            "index",
            "query",
            "--query",
            "edge",
            "--u",
            "0",
            "--v",
            "1",
            idx.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "original index untouched: {out:?}");
}

#[test]
fn index_flag_validation() {
    let input = figure2_file();
    let idx = temp_file("figure2-validation.tix");

    // Missing --out.
    let out = truss_bin()
        .args(["index", "build", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("--out"));

    // Unknown engine: the error lists the registered names dynamically.
    let out = truss_bin()
        .args([
            "index",
            "build",
            "--algo",
            "frobnicate",
            "--out",
            idx.to_str().unwrap(),
            input.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    for kind in AlgorithmKind::all() {
        assert!(stderr.contains(kind.name()), "{}: {stderr}", kind.name());
    }

    // Build a real index for the query checks.
    assert!(truss_bin()
        .args([
            "index",
            "build",
            "--out",
            idx.to_str().unwrap(),
            input.to_str().unwrap(),
        ])
        .output()
        .unwrap()
        .status
        .success());

    // Unknown query kind, missing --k, unknown subcommand.
    let out = truss_bin()
        .args([
            "index",
            "query",
            "--query",
            "frobnicate",
            idx.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = truss_bin()
        .args(["index", "query", "--query", "ktruss", idx.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("--k"));
    let out = truss_bin()
        .args(["index", "frobnicate", idx.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // A non-index file is rejected by the format layer (bad magic).
    let out = truss_bin()
        .args(["index", "query", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8(out.stderr).unwrap().contains("magic"),
        "expected a bad-magic error"
    );
}

#[test]
fn ktruss_extracts_subgraph() {
    let input = figure2_file();
    let out = truss_bin()
        .args(["ktruss", "--k", "5", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.lines().count(), 10, "the K5");
}

#[test]
fn topt_reports_top_classes() {
    let input = figure2_file();
    let out = truss_bin()
        .args(["topt", "--t", "2", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("k_max = 5"), "{stderr}");
    assert!(stderr.contains("Φ_5: 10 edges"), "{stderr}");
}

#[test]
fn generate_then_stats_round_trip() {
    let path = temp_file("gen.snap");
    let out = truss_bin()
        .args([
            "generate",
            "--dataset",
            "p2p",
            "--scale",
            "0.02",
            "--seed",
            "7",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = truss_bin()
        .args(["stats", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("k_max"), "{stdout}");
    assert!(stdout.contains("triangles"), "{stdout}");
}

#[test]
fn binary_format_by_extension() {
    let path = temp_file("gen.bin");
    assert!(truss_bin()
        .args([
            "generate",
            "--dataset",
            "hep",
            "--scale",
            "0.01",
            path.to_str().unwrap()
        ])
        .output()
        .unwrap()
        .status
        .success());
    let out = truss_bin()
        .args(["decompose", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
}

#[test]
fn errors_are_reported() {
    // Unknown subcommand.
    let out = truss_bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    // Missing input.
    let out = truss_bin().args(["decompose"]).output().unwrap();
    assert!(!out.status.success());
    // Nonexistent file.
    let out = truss_bin()
        .args(["decompose", "/nonexistent/graph.snap"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error"), "{stderr}");
    // Bad k.
    let input = figure2_file();
    let out = truss_bin()
        .args(["ktruss", "--k", "1", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

/// `--query status --report json` against a WAL daemon emits the full
/// durability block as one flat JSON line (the shape `repro_ingest` and
/// the CI recovery-smoke job parse).
#[test]
fn status_report_json_carries_durability_metrics() {
    let dir = std::env::temp_dir().join(format!("truss-cli-status-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = figure2_file();
    let idx = dir.join("s.tix");
    assert!(truss_bin()
        .args([
            "index",
            "build",
            "--out",
            idx.to_str().unwrap(),
            input.to_str().unwrap()
        ])
        .output()
        .unwrap()
        .status
        .success());

    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let wal = dir.join("s.log");
    let mut daemon = truss_bin()
        .args([
            "serve",
            "--port",
            &port.to_string(),
            "--threads",
            "2",
            "--wal",
            wal.to_str().unwrap(),
            idx.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // One durable update so the counters are non-zero.
    let delta = dir.join("s.delta");
    std::fs::write(&delta, "+ 4 7\n").unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let out = truss_bin()
            .args([
                "query",
                "--remote",
                &addr,
                "--query",
                "update",
                "--delta",
                delta.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        if out.status.success() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never came up: {out:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    let out = truss_bin()
        .args([
            "query", "--remote", &addr, "--query", "status", "--report", "json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let json = stdout.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert_eq!(json_u64(json, "generation"), 1, "{json}");
    assert!(json.contains("\"wal_enabled\":true"), "{json}");
    assert!(json.contains("\"wal_poisoned\":false"), "{json}");
    assert_eq!(json_u64(json, "wal_records"), 1, "{json}");
    assert!(json_u64(json, "wal_bytes_appended") > 0, "{json}");
    assert!(json_u64(json, "wal_fsyncs") >= 1, "{json}");
    assert!(json_u64(json, "group_commit_batches") >= 1, "{json}");
    assert_eq!(json_u64(json, "recovery_records_replayed"), 0, "{json}");
    assert_eq!(json_u64(json, "recovery_bytes_truncated"), 0, "{json}");
    // The checksum is a fixed-width hex string, not a JSON number (u64
    // checksums overflow double-precision JSON readers).
    assert!(json.contains("\"checksum\":\""), "{json}");

    // Local (non-remote) status is refused, and --report json on a
    // non-status query is refused.
    let out = truss_bin()
        .args(["query", "--query", "status", idx.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = truss_bin()
        .args([
            "query", "--remote", &addr, "--query", "spectrum", "--report", "json",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let _ = truss_bin()
        .args(["query", "--remote", &addr, "--query", "shutdown"])
        .output();
    let _ = daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reads the magic + version byte of a file, the way the auto-detecting
/// loaders classify it.
fn file_magic(path: &std::path::Path) -> (Vec<u8>, u8) {
    let bytes = std::fs::read(path).unwrap();
    (bytes[..8].to_vec(), bytes[8])
}

#[test]
fn convert_round_trips_graph_bit_identically() {
    let dir = std::env::temp_dir().join(format!("truss-cli-convert-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v1 = dir.join("g.bin");
    let v2 = dir.join("g.gr2");
    let v1_back = dir.join("g2.bin");

    assert!(truss_bin()
        .args([
            "generate",
            "--dataset",
            "hep",
            "--scale",
            "0.01",
            "--seed",
            "3",
            v1.to_str().unwrap()
        ])
        .output()
        .unwrap()
        .status
        .success());

    // v1 -> v2: the output is a TRUSSGR2 snapshot.
    let out = truss_bin()
        .args([
            "convert",
            "--to",
            "v2",
            v1.to_str().unwrap(),
            v2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(file_magic(&v2).0, b"TRUSSGR2");

    // Decomposing the snapshot gives byte-identical TSV to the binary.
    let from_v1 = truss_bin()
        .args(["decompose", v1.to_str().unwrap()])
        .output()
        .unwrap();
    let from_v2 = truss_bin()
        .args(["decompose", v2.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(from_v1.status.success() && from_v2.status.success());
    assert_eq!(from_v1.stdout, from_v2.stdout, "mapped vs parsed TSV");

    // v2 -> v1 restores the original file bit-for-bit.
    let out = truss_bin()
        .args([
            "convert",
            "--to",
            "v1",
            v2.to_str().unwrap(),
            v1_back.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(
        std::fs::read(&v1).unwrap(),
        std::fs::read(&v1_back).unwrap()
    );

    // Unknown --to is rejected.
    let out = truss_bin()
        .args([
            "convert",
            "--to",
            "v9",
            v1.to_str().unwrap(),
            v2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn index_build_writes_v2_by_default_and_v1_on_request() {
    let input = figure2_file();
    let dir = std::env::temp_dir().join(format!("truss-cli-ifmt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v2 = dir.join("f.tix");
    let v1 = dir.join("f.v1.tix");

    for (path, format_args) in [(&v2, vec![]), (&v1, vec!["--format", "v1"])] {
        let mut args = vec!["index", "build", "--out", path.to_str().unwrap()];
        args.extend(format_args);
        args.push(input.to_str().unwrap());
        let out = truss_bin().args(&args).output().unwrap();
        assert!(out.status.success(), "{out:?}");
    }
    let (magic2, ver2) = file_magic(&v2);
    assert_eq!((magic2.as_slice(), ver2), (b"TRUSSIDX".as_slice(), 2));
    let (magic1, ver1) = file_magic(&v1);
    assert_eq!((magic1.as_slice(), ver1), (b"TRUSSIDX".as_slice(), 1));

    // Both serve identical query answers.
    for q in [["--query", "spectrum"], ["--query", "ktruss"]] {
        let mut a1 = q.to_vec();
        let mut a2 = q.to_vec();
        if q[1] == "ktruss" {
            a1.extend(["--k", "4"]);
            a2.extend(["--k", "4"]);
        }
        a1.push(v1.to_str().unwrap());
        a2.push(v2.to_str().unwrap());
        let o1 = truss_bin()
            .args(["index", "query"].iter().copied().chain(a1))
            .output()
            .unwrap();
        let o2 = truss_bin()
            .args(["index", "query"].iter().copied().chain(a2))
            .output()
            .unwrap();
        assert!(o1.status.success() && o2.status.success());
        assert_eq!(o1.stdout, o2.stdout, "{q:?}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn index_update_rewrites_in_the_format_it_read() {
    let input = figure2_file();
    let dir = std::env::temp_dir().join(format!("truss-cli-ufmt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let delta = dir.join("d.delta");
    std::fs::write(&delta, "+ 4 7\n").unwrap();

    for (build_fmt, expect_ver) in [("v1", 1u8), ("v2", 2u8)] {
        let idx = dir.join(format!("u.{build_fmt}.tix"));
        assert!(truss_bin()
            .args([
                "index",
                "build",
                "--format",
                build_fmt,
                "--out",
                idx.to_str().unwrap(),
                input.to_str().unwrap()
            ])
            .output()
            .unwrap()
            .status
            .success());
        // In-place update preserves the on-disk format.
        let out = truss_bin()
            .args([
                "index",
                "update",
                "--delta",
                delta.to_str().unwrap(),
                idx.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{out:?}");
        assert_eq!(
            file_magic(&idx).1,
            expect_ver,
            "update must keep {build_fmt}"
        );
        // The updated index answers the new edge.
        assert!(truss_bin()
            .args([
                "index",
                "query",
                "--query",
                "edge",
                "--u",
                "4",
                "--v",
                "7",
                idx.to_str().unwrap()
            ])
            .output()
            .unwrap()
            .status
            .success());
    }

    // --format v2 migrates a v1 index during update.
    let idx = dir.join("m.tix");
    assert!(truss_bin()
        .args([
            "index",
            "build",
            "--format",
            "v1",
            "--out",
            idx.to_str().unwrap(),
            input.to_str().unwrap()
        ])
        .output()
        .unwrap()
        .status
        .success());
    let out = truss_bin()
        .args([
            "index",
            "update",
            "--delta",
            delta.to_str().unwrap(),
            "--format",
            "v2",
            idx.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(file_magic(&idx).1, 2, "--format v2 must migrate");
    std::fs::remove_dir_all(&dir).unwrap();
}

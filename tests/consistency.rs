//! Cross-algorithm consistency: every engine in the registry (TD-inmem,
//! TD-inmem+, TD-bottomup, TD-topdown, TD-MR, and the PKT-style parallel
//! engine) must produce identical decompositions on a suite of generators,
//! seeds and memory budgets.
//!
//! All dispatch goes through `truss_decomposition::engine::registry()` —
//! a newly registered engine is automatically pulled into every check. The
//! parallel engine additionally gets a dedicated thread-ladder sweep, since
//! the pairwise pass runs every engine under one shared config.

use truss_decomposition::core::decompose::TrussDecomposition;
use truss_decomposition::core::index::TrussIndex;
use truss_decomposition::core::truss::verify_decomposition;
use truss_decomposition::engine::{
    registry, AlgorithmKind, EngineConfig, EngineInput, EngineRegistry,
};
use truss_decomposition::graph::generators as gen;
use truss_decomposition::graph::{CsrGraph, Edge};
use truss_decomposition::storage::IoConfig;

/// The generator suite: name + graph.
fn suite() -> Vec<(String, CsrGraph)> {
    let mut graphs: Vec<(String, CsrGraph)> = vec![
        ("figure2".into(), gen::figure2_graph()),
        ("manager".into(), gen::manager_graph()),
        ("k8".into(), gen::complete(8)),
        ("cycle12".into(), gen::cycle(12)),
        ("bipartite".into(), gen::complete_bipartite(4, 6)),
        ("grid".into(), gen::grid(5, 6)),
        ("ws".into(), gen::watts_strogatz(60, 6, 0.2, 5)),
        ("ba".into(), gen::barabasi_albert(80, 3, 9)),
        ("rmat".into(), gen::rmat(gen::RmatConfig::skewed(7, 600), 4)),
        // Degenerate degree distributions: a pure star (every edge support
        // 0, one giant hub column) and a hub with a planted near-clique
        // (the hub edge sits in many triangles while the leaves sit in
        // none — the skew the degree-aware block sizing exists for).
        ("star".into(), gen::star(300)),
        (
            "hub-clique".into(),
            gen::planted_clique(&gen::star(200), 24, 7),
        ),
        // A heavier power-law than "rmat": twice the scale and samples,
        // so deep k-classes coexist with long support-0 tails.
        (
            "rmat-heavy".into(),
            gen::rmat(gen::RmatConfig::skewed(8, 1500), 8),
        ),
        (
            "communities".into(),
            gen::overlapping_communities(
                gen::CommunityConfig {
                    n: 120,
                    communities: 12,
                    min_size: 3,
                    max_size: 12,
                    size_exponent: 2.0,
                    density: 0.9,
                    background_edges: 120,
                },
                11,
            ),
        ),
    ];
    for seed in 0..3 {
        graphs.push((format!("gnm-{seed}"), gen::gnm(50, 320, seed)));
    }
    graphs
}

/// Engine configuration with the given memory budget and stats collection
/// off (the suite runs hundreds of decompositions). The engines themselves
/// clamp the budget up to the algorithmic minimum via `effective_io`.
fn config_with_budget(budget: usize) -> EngineConfig {
    let mut config = EngineConfig::with_io(IoConfig {
        memory_budget: budget,
        block_size: (budget / 8).max(64),
    });
    config.collect_support_stats = false;
    config
}

/// The TD-MR baseline is slow by design; skip it on larger suite graphs.
fn runs_on(kind: AlgorithmKind, g: &CsrGraph) -> bool {
    kind != AlgorithmKind::MapReduce || g.num_edges() <= 400
}

fn run(
    engines: &EngineRegistry,
    kind: AlgorithmKind,
    g: &CsrGraph,
    config: &EngineConfig,
    label: &str,
) -> TrussDecomposition {
    let engine = engines
        .get(kind)
        .unwrap_or_else(|| panic!("{kind} missing"));
    let (d, report) = engine
        .run(EngineInput::Graph(g), config)
        .unwrap_or_else(|e| panic!("{label}: {kind}: {e}"));
    assert_eq!(report.k_max, d.k_max(), "{label}: {kind} report k_max");
    d
}

/// Every pair of registered engines agrees edge-for-edge, and the common
/// result satisfies the k-truss definition.
#[test]
fn all_engines_agree_pairwise() {
    let engines = registry();
    assert!(
        engines.len() >= 6,
        "expected the five paper algorithms plus the parallel engine"
    );
    for (name, g) in suite() {
        // Two worker threads so the parallel engine's concurrent peel (not
        // just its serial fallback) is what gets cross-checked.
        let mut config = config_with_budget(1 << 20);
        config.threads = 2;
        let results: Vec<(AlgorithmKind, TrussDecomposition)> = engines
            .kinds()
            .into_iter()
            .filter(|&kind| runs_on(kind, &g))
            .map(|kind| (kind, run(&engines, kind, &g, &config, &name)))
            .collect();
        assert!(results.len() >= 5, "{name}: too few engines ran");
        verify_decomposition(&g, &results[0].1).unwrap_or_else(|e| panic!("{name}: {e}"));
        for (i, (kind_a, a)) in results.iter().enumerate() {
            for (kind_b, b) in &results[i + 1..] {
                assert_eq!(a.trussness(), b.trussness(), "{name}: {kind_a} vs {kind_b}");
            }
        }
    }
}

/// The parallel engine matches the serial reference on every suite graph
/// at every thread count — the acceptance bar for `--algo parallel
/// --threads N`. Thread counts beyond the frontier size and beyond the
/// machine width are included deliberately.
#[test]
fn parallel_engine_matches_serial_across_thread_counts() {
    let engines = registry();
    for (name, g) in suite() {
        let exact = run(
            &engines,
            AlgorithmKind::InmemPlus,
            &g,
            &config_with_budget(1 << 20),
            &name,
        );
        for threads in [1usize, 2, 4, 8] {
            let mut config = config_with_budget(1 << 20);
            config.threads = threads;
            let engine = engines.get(AlgorithmKind::Parallel).expect("registered");
            let (d, report) = engine
                .run(EngineInput::Graph(&g), &config)
                .unwrap_or_else(|e| panic!("{name}@{threads}: {e}"));
            assert_eq!(report.threads_used, threads, "{name}@{threads}");
            assert_eq!(
                d.trussness(),
                exact.trussness(),
                "{name}: parallel@{threads} vs inmem+"
            );
        }
    }
}

/// The out-of-core engine's shard-parallel passes are exact and
/// deterministic at every worker width: `--algo outofcore --threads N`
/// produces byte-identical trussness for N in {1, 2, 4, 8} and matches
/// the in-memory reference. Trussness is a unique function of the graph,
/// so determinism here is a corollary of correctness — but the ladder
/// still catches lost or double-applied cross-shard decrements, which
/// manifest as thread-count-dependent output. Widths beyond the machine
/// (the pool is unclamped inside the engine) are included deliberately.
#[test]
fn outofcore_engine_matches_serial_across_thread_counts() {
    let engines = registry();
    for (name, g) in suite() {
        let exact = run(
            &engines,
            AlgorithmKind::InmemPlus,
            &g,
            &config_with_budget(1 << 20),
            &name,
        );
        let mut previous: Option<Vec<u32>> = None;
        for threads in [1usize, 2, 4, 8] {
            let mut config = config_with_budget(1 << 20);
            config.threads = threads;
            let engine = engines.get(AlgorithmKind::OutOfCore).expect("registered");
            let (d, report) = engine
                .run(EngineInput::Graph(&g), &config)
                .unwrap_or_else(|e| panic!("{name}@{threads}: {e}"));
            assert_eq!(report.threads_used, threads, "{name}@{threads}");
            assert_eq!(
                d.trussness(),
                exact.trussness(),
                "{name}: outofcore@{threads} vs inmem+"
            );
            if let Some(prev) = &previous {
                assert_eq!(
                    d.trussness(),
                    prev.as_slice(),
                    "{name}: outofcore@{threads} not byte-identical to previous width"
                );
            }
            previous = Some(d.trussness().to_vec());
        }
    }
}

/// The parallel peel is *deterministic*: bit-identical trussness across
/// repeated runs and across thread counts far beyond the machine width.
/// Unclamped pools force genuinely concurrent workers — a regular pool on
/// a small CI machine would silently collapse every rung to one worker —
/// and the dense G(n,m) graph pushes the per-sub-iteration work estimate
/// past the spawn floor, so the cost-balanced fan-out path (not just the
/// direct path) is what must prove stable here.
#[test]
fn parallel_peel_is_deterministic_across_wide_ladders() {
    use truss_decomposition::core::parallel::parallel_truss_decompose_with;
    use truss_decomposition::core::pool::ThreadPool;
    let graphs = [
        ("hub-clique", gen::planted_clique(&gen::star(150), 20, 3)),
        ("rmat-heavy", gen::rmat(gen::RmatConfig::skewed(8, 1600), 8)),
        ("gnm-dense", gen::gnm(1200, 24_000, 9)),
    ];
    for (name, g) in graphs {
        let reference = truss_decomposition::prelude::truss_decompose(&g);
        for threads in [16usize, 32] {
            let pool = ThreadPool::unclamped(threads);
            for rep in 0..2 {
                let (d, _, _) = parallel_truss_decompose_with(&g, &pool);
                assert_eq!(
                    d.trussness(),
                    reference.trussness(),
                    "{name}@{threads} rep {rep}"
                );
            }
        }
    }
}

/// The external engines stay correct when the budget is squeezed far below
/// the graph size (exercising partitioned pair-sweep paths).
#[test]
fn external_engines_survive_tiny_budgets() {
    let engines = registry();
    for (name, g) in suite() {
        let exact = run(
            &engines,
            AlgorithmKind::InmemPlus,
            &g,
            &config_with_budget(1 << 20),
            &name,
        );
        let tiny = config_with_budget(6 * 1024);
        for kind in [AlgorithmKind::BottomUp, AlgorithmKind::TopDown] {
            let d = run(&engines, kind, &g, &tiny, &name);
            assert_eq!(
                d.trussness(),
                exact.trussness(),
                "{name}: {kind} tiny budget"
            );
        }
    }
}

/// Incremental `TrussIndex` maintenance agrees with every registered
/// engine: build an index on a reduced graph, insert the held-out edges
/// back, and the maintained truss numbers must match each engine's
/// from-scratch run on the full graph; then delete a batch and match each
/// engine on the correspondingly reduced graph. Like the pairwise check,
/// this pulls in newly registered engines automatically.
#[test]
fn dynamic_index_maintenance_matches_all_engines() {
    let engines = registry();
    let mut config = config_with_budget(1 << 20);
    config.threads = 2;
    for (name, g) in suite() {
        let all: Vec<Edge> = g.edges().to_vec();
        let held: Vec<Edge> = all.iter().copied().step_by(6).collect();
        let base: Vec<Edge> = all.iter().copied().filter(|e| !held.contains(e)).collect();
        let mut index = TrussIndex::from_decompose(CsrGraph::from_edges(base));
        let stats = index.insert_edges(&held);
        assert_eq!(stats.inserted, held.len(), "{name}");
        for kind in engines.kinds() {
            if !runs_on(kind, &g) {
                continue;
            }
            let d = run(&engines, kind, &g, &config, &name);
            assert_eq!(
                index.trussness(),
                d.trussness(),
                "{name}: incremental insert vs {kind}"
            );
        }

        let victims: Vec<Edge> = all.iter().copied().skip(1).step_by(5).collect();
        index.remove_edges(&victims);
        let reduced = CsrGraph::from_edges(
            all.iter()
                .copied()
                .filter(|e| !victims.contains(e))
                .collect::<Vec<_>>(),
        );
        for kind in engines.kinds() {
            if !runs_on(kind, &reduced) {
                continue;
            }
            let d = run(&engines, kind, &reduced, &config, &name);
            assert_eq!(
                index.trussness(),
                d.trussness(),
                "{name}: incremental delete vs {kind}"
            );
        }
    }
}

#[test]
fn dataset_analogues_consistent() {
    use truss_decomposition::graph::generators::datasets::all_datasets;
    let engines = registry();
    for dataset in all_datasets() {
        // Cap the test size: the paper-scale edge counts differ by 4 orders
        // of magnitude, so choose the scale per dataset for ~8K edges.
        let scale = (8_000.0 / dataset.spec().paper.edges as f64).min(0.05);
        let g = dataset.build_scaled(scale, 77);
        let name = dataset.spec().name;
        let exact = run(
            &engines,
            AlgorithmKind::InmemPlus,
            &g,
            &config_with_budget(1 << 24),
            name,
        );
        verify_decomposition(&g, &exact).unwrap_or_else(|e| panic!("{name}: {e}"));
        // A budget that keeps candidate subgraphs in memory (the planted
        // near-cliques of the lj/web analogues dominate at tiny scales and
        // debug-mode pair-sweeps over them are prohibitively slow); stage 1
        // still partitions since its parts charge ~64 B per edge.
        let budget = (g.num_edges() * 80).max(1 << 14);
        let mut config = config_with_budget(budget);
        config.io.block_size = (budget / 16).max(512);
        let d = run(&engines, AlgorithmKind::BottomUp, &g, &config, name);
        assert_eq!(d.trussness(), exact.trussness(), "{name}");
    }
}

/// Every query API of the index answers identically on the owned
/// (in-memory) view and the mapped/buffered v2 snapshot views, across
/// the whole generator suite — and on the v1 file for good measure.
/// This is the acceptance gate for the zero-copy storage path: a graph
/// or index served straight from disk must be indistinguishable from
/// one built on the heap.
#[test]
fn snapshot_views_answer_queries_identically_across_suite() {
    use truss_decomposition::storage::LoadMode;
    let dir = std::env::temp_dir().join(format!("truss-consistency-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (name, g) in suite() {
        let owned = TrussIndex::from_decompose(g.clone());
        let v2 = dir.join(format!("{name}.tix"));
        let v1 = dir.join(format!("{name}.v1.tix"));
        owned
            .save(&v2)
            .unwrap_or_else(|e| panic!("{name}: save v2: {e}"));
        owned
            .save_as(&v1, truss_decomposition::core::index::IndexFormat::V1)
            .unwrap_or_else(|e| panic!("{name}: save v1: {e}"));

        let mapped = TrussIndex::load(&v2).unwrap_or_else(|e| panic!("{name}: load v2: {e}"));
        let (buffered, _) = TrussIndex::load_with(&v2, LoadMode::Buffered)
            .unwrap_or_else(|e| panic!("{name}: buffered v2: {e}"));
        let legacy = TrussIndex::load(&v1).unwrap_or_else(|e| panic!("{name}: load v1: {e}"));

        for (flavor, view) in [
            ("mapped", &mapped),
            ("buffered", &buffered),
            ("v1", &legacy),
        ] {
            let label = format!("{name}/{flavor}");
            assert_eq!(view.trussness(), owned.trussness(), "{label}");
            assert_eq!(view.max_k(), owned.max_k(), "{label}");
            assert_eq!(view.num_edges(), owned.num_edges(), "{label}");
            assert_eq!(view.num_vertices(), owned.num_vertices(), "{label}");
            assert_eq!(view.vertex_trussness(), owned.vertex_trussness(), "{label}");
            for k in 0..=owned.max_k() + 2 {
                assert_eq!(view.k_truss_size(k), owned.k_truss_size(k), "{label} k={k}");
                assert_eq!(
                    view.k_truss_edge_ids(k),
                    owned.k_truss_edge_ids(k),
                    "{label} k={k}"
                );
                assert_eq!(
                    view.k_truss_edges(k),
                    owned.k_truss_edges(k),
                    "{label} k={k}"
                );
                let (vc, oc) = (view.k_truss_communities(k), owned.k_truss_communities(k));
                assert_eq!(vc.len(), oc.len(), "{label} k={k} communities");
                for (a, b) in vc.iter().zip(&oc) {
                    assert_eq!(a.vertices, b.vertices, "{label} k={k}");
                }
            }
            let (vs, os) = (view.spectrum(), owned.spectrum());
            assert_eq!(vs.k_max, os.k_max, "{label}");
            assert_eq!(vs.class_sizes, os.class_sizes, "{label}");
            for (id, e) in g.iter_edges() {
                assert_eq!(view.truss_of(e.u, e.v), owned.truss_of(e.u, e.v), "{label}");
                assert_eq!(view.truss_of_edge(id), owned.truss_of_edge(id), "{label}");
            }
        }

        // The mapped view keeps no per-section heap; its pages are
        // accounted as mapped bytes instead.
        if mapped.mapped_bytes() > 0 {
            assert_eq!(mapped.heap_bytes(), 0, "{name}: mapped index costs no heap");
        }
        assert!(
            buffered.mapped_bytes() == 0 && buffered.heap_bytes() > 0,
            "{name}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A mapped index stays fully functional under mutation: `apply`
/// detaches the views copy-on-write and the updated index matches a
/// from-scratch decomposition (and can be re-saved in either format).
#[test]
fn mapped_index_survives_updates_via_copy_on_write() {
    use truss_decomposition::prelude::EdgeDelta;
    let g = gen::figure2_graph();
    let path = std::env::temp_dir().join(format!("truss-cow-{}.tix", std::process::id()));
    TrussIndex::from_decompose(g).save(&path).unwrap();
    let mut index = TrussIndex::load(&path).unwrap();

    let mut delta = EdgeDelta::new();
    delta.remove.push(Edge::new(0, 1));
    delta.insert.push(Edge::new(4, 7));
    index.apply(&delta);

    let scratch = truss_decomposition::prelude::truss_decompose(index.graph());
    assert_eq!(index.trussness(), scratch.trussness());
    index.save(&path).unwrap();
    let back = TrussIndex::load(&path).unwrap();
    assert_eq!(back.trussness(), index.trussness());
    std::fs::remove_file(&path).unwrap();
}

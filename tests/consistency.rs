//! Cross-algorithm consistency: every engine in the registry (TD-inmem,
//! TD-inmem+, TD-bottomup, TD-topdown, TD-MR, and the PKT-style parallel
//! engine) must produce identical decompositions on a suite of generators,
//! seeds and memory budgets.
//!
//! All dispatch goes through `truss_decomposition::engine::registry()` —
//! a newly registered engine is automatically pulled into every check. The
//! parallel engine additionally gets a dedicated thread-ladder sweep, since
//! the pairwise pass runs every engine under one shared config.

use truss_decomposition::core::decompose::TrussDecomposition;
use truss_decomposition::core::index::TrussIndex;
use truss_decomposition::core::truss::verify_decomposition;
use truss_decomposition::engine::{
    registry, AlgorithmKind, EngineConfig, EngineInput, EngineRegistry,
};
use truss_decomposition::graph::generators as gen;
use truss_decomposition::graph::{CsrGraph, Edge};
use truss_decomposition::storage::IoConfig;

/// The generator suite: name + graph.
fn suite() -> Vec<(String, CsrGraph)> {
    let mut graphs: Vec<(String, CsrGraph)> = vec![
        ("figure2".into(), gen::figure2_graph()),
        ("manager".into(), gen::manager_graph()),
        ("k8".into(), gen::complete(8)),
        ("cycle12".into(), gen::cycle(12)),
        ("bipartite".into(), gen::complete_bipartite(4, 6)),
        ("grid".into(), gen::grid(5, 6)),
        ("ws".into(), gen::watts_strogatz(60, 6, 0.2, 5)),
        ("ba".into(), gen::barabasi_albert(80, 3, 9)),
        ("rmat".into(), gen::rmat(gen::RmatConfig::skewed(7, 600), 4)),
        (
            "communities".into(),
            gen::overlapping_communities(
                gen::CommunityConfig {
                    n: 120,
                    communities: 12,
                    min_size: 3,
                    max_size: 12,
                    size_exponent: 2.0,
                    density: 0.9,
                    background_edges: 120,
                },
                11,
            ),
        ),
    ];
    for seed in 0..3 {
        graphs.push((format!("gnm-{seed}"), gen::gnm(50, 320, seed)));
    }
    graphs
}

/// Engine configuration with the given memory budget and stats collection
/// off (the suite runs hundreds of decompositions). The engines themselves
/// clamp the budget up to the algorithmic minimum via `effective_io`.
fn config_with_budget(budget: usize) -> EngineConfig {
    let mut config = EngineConfig::with_io(IoConfig {
        memory_budget: budget,
        block_size: (budget / 8).max(64),
    });
    config.collect_support_stats = false;
    config
}

/// The TD-MR baseline is slow by design; skip it on larger suite graphs.
fn runs_on(kind: AlgorithmKind, g: &CsrGraph) -> bool {
    kind != AlgorithmKind::MapReduce || g.num_edges() <= 400
}

fn run(
    engines: &EngineRegistry,
    kind: AlgorithmKind,
    g: &CsrGraph,
    config: &EngineConfig,
    label: &str,
) -> TrussDecomposition {
    let engine = engines
        .get(kind)
        .unwrap_or_else(|| panic!("{kind} missing"));
    let (d, report) = engine
        .run(EngineInput::Graph(g), config)
        .unwrap_or_else(|e| panic!("{label}: {kind}: {e}"));
    assert_eq!(report.k_max, d.k_max(), "{label}: {kind} report k_max");
    d
}

/// Every pair of registered engines agrees edge-for-edge, and the common
/// result satisfies the k-truss definition.
#[test]
fn all_engines_agree_pairwise() {
    let engines = registry();
    assert!(
        engines.len() >= 6,
        "expected the five paper algorithms plus the parallel engine"
    );
    for (name, g) in suite() {
        // Two worker threads so the parallel engine's concurrent peel (not
        // just its serial fallback) is what gets cross-checked.
        let mut config = config_with_budget(1 << 20);
        config.threads = 2;
        let results: Vec<(AlgorithmKind, TrussDecomposition)> = engines
            .kinds()
            .into_iter()
            .filter(|&kind| runs_on(kind, &g))
            .map(|kind| (kind, run(&engines, kind, &g, &config, &name)))
            .collect();
        assert!(results.len() >= 5, "{name}: too few engines ran");
        verify_decomposition(&g, &results[0].1).unwrap_or_else(|e| panic!("{name}: {e}"));
        for (i, (kind_a, a)) in results.iter().enumerate() {
            for (kind_b, b) in &results[i + 1..] {
                assert_eq!(a.trussness(), b.trussness(), "{name}: {kind_a} vs {kind_b}");
            }
        }
    }
}

/// The parallel engine matches the serial reference on every suite graph
/// at every thread count — the acceptance bar for `--algo parallel
/// --threads N`. Thread counts beyond the frontier size and beyond the
/// machine width are included deliberately.
#[test]
fn parallel_engine_matches_serial_across_thread_counts() {
    let engines = registry();
    for (name, g) in suite() {
        let exact = run(
            &engines,
            AlgorithmKind::InmemPlus,
            &g,
            &config_with_budget(1 << 20),
            &name,
        );
        for threads in [1usize, 2, 4, 8] {
            let mut config = config_with_budget(1 << 20);
            config.threads = threads;
            let engine = engines.get(AlgorithmKind::Parallel).expect("registered");
            let (d, report) = engine
                .run(EngineInput::Graph(&g), &config)
                .unwrap_or_else(|e| panic!("{name}@{threads}: {e}"));
            assert_eq!(report.threads_used, threads, "{name}@{threads}");
            assert_eq!(
                d.trussness(),
                exact.trussness(),
                "{name}: parallel@{threads} vs inmem+"
            );
        }
    }
}

/// The external engines stay correct when the budget is squeezed far below
/// the graph size (exercising partitioned pair-sweep paths).
#[test]
fn external_engines_survive_tiny_budgets() {
    let engines = registry();
    for (name, g) in suite() {
        let exact = run(
            &engines,
            AlgorithmKind::InmemPlus,
            &g,
            &config_with_budget(1 << 20),
            &name,
        );
        let tiny = config_with_budget(6 * 1024);
        for kind in [AlgorithmKind::BottomUp, AlgorithmKind::TopDown] {
            let d = run(&engines, kind, &g, &tiny, &name);
            assert_eq!(
                d.trussness(),
                exact.trussness(),
                "{name}: {kind} tiny budget"
            );
        }
    }
}

/// Incremental `TrussIndex` maintenance agrees with every registered
/// engine: build an index on a reduced graph, insert the held-out edges
/// back, and the maintained truss numbers must match each engine's
/// from-scratch run on the full graph; then delete a batch and match each
/// engine on the correspondingly reduced graph. Like the pairwise check,
/// this pulls in newly registered engines automatically.
#[test]
fn dynamic_index_maintenance_matches_all_engines() {
    let engines = registry();
    let mut config = config_with_budget(1 << 20);
    config.threads = 2;
    for (name, g) in suite() {
        let all: Vec<Edge> = g.edges().to_vec();
        let held: Vec<Edge> = all.iter().copied().step_by(6).collect();
        let base: Vec<Edge> = all.iter().copied().filter(|e| !held.contains(e)).collect();
        let mut index = TrussIndex::from_decompose(CsrGraph::from_edges(base));
        let stats = index.insert_edges(&held);
        assert_eq!(stats.inserted, held.len(), "{name}");
        for kind in engines.kinds() {
            if !runs_on(kind, &g) {
                continue;
            }
            let d = run(&engines, kind, &g, &config, &name);
            assert_eq!(
                index.trussness(),
                d.trussness(),
                "{name}: incremental insert vs {kind}"
            );
        }

        let victims: Vec<Edge> = all.iter().copied().skip(1).step_by(5).collect();
        index.remove_edges(&victims);
        let reduced = CsrGraph::from_edges(
            all.iter()
                .copied()
                .filter(|e| !victims.contains(e))
                .collect::<Vec<_>>(),
        );
        for kind in engines.kinds() {
            if !runs_on(kind, &reduced) {
                continue;
            }
            let d = run(&engines, kind, &reduced, &config, &name);
            assert_eq!(
                index.trussness(),
                d.trussness(),
                "{name}: incremental delete vs {kind}"
            );
        }
    }
}

#[test]
fn dataset_analogues_consistent() {
    use truss_decomposition::graph::generators::datasets::all_datasets;
    let engines = registry();
    for dataset in all_datasets() {
        // Cap the test size: the paper-scale edge counts differ by 4 orders
        // of magnitude, so choose the scale per dataset for ~8K edges.
        let scale = (8_000.0 / dataset.spec().paper.edges as f64).min(0.05);
        let g = dataset.build_scaled(scale, 77);
        let name = dataset.spec().name;
        let exact = run(
            &engines,
            AlgorithmKind::InmemPlus,
            &g,
            &config_with_budget(1 << 24),
            name,
        );
        verify_decomposition(&g, &exact).unwrap_or_else(|e| panic!("{name}: {e}"));
        // A budget that keeps candidate subgraphs in memory (the planted
        // near-cliques of the lj/web analogues dominate at tiny scales and
        // debug-mode pair-sweeps over them are prohibitively slow); stage 1
        // still partitions since its parts charge ~64 B per edge.
        let budget = (g.num_edges() * 80).max(1 << 14);
        let mut config = config_with_budget(budget);
        config.io.block_size = (budget / 16).max(512);
        let d = run(&engines, AlgorithmKind::BottomUp, &g, &config, name);
        assert_eq!(d.trussness(), exact.trussness(), "{name}");
    }
}

//! Cross-algorithm consistency: TD-inmem, TD-inmem+, TD-bottomup,
//! TD-topdown and TD-MR must produce identical decompositions on a suite of
//! generators, seeds and memory budgets.

use truss_decomposition::core::bottom_up::{bottom_up_decompose, BottomUpConfig};
use truss_decomposition::core::decompose::{truss_decompose, truss_decompose_naive};
use truss_decomposition::core::top_down::{top_down_decompose, TopDownConfig};
use truss_decomposition::core::truss::verify_decomposition;
use truss_decomposition::graph::generators as gen;
use truss_decomposition::graph::CsrGraph;
use truss_decomposition::mapreduce::twiddling::mr_truss_decompose;
use truss_decomposition::storage::IoConfig;

/// The generator suite: name + graph.
fn suite() -> Vec<(String, CsrGraph)> {
    let mut graphs: Vec<(String, CsrGraph)> = vec![
        ("figure2".into(), gen::figure2_graph()),
        ("manager".into(), gen::manager_graph()),
        ("k8".into(), gen::complete(8)),
        ("cycle12".into(), gen::cycle(12)),
        ("bipartite".into(), gen::complete_bipartite(4, 6)),
        ("grid".into(), gen::grid(5, 6)),
        ("ws".into(), gen::watts_strogatz(60, 6, 0.2, 5)),
        ("ba".into(), gen::barabasi_albert(80, 3, 9)),
        (
            "rmat".into(),
            gen::rmat(gen::RmatConfig::skewed(7, 600), 4),
        ),
        (
            "communities".into(),
            gen::overlapping_communities(
                gen::CommunityConfig {
                    n: 120,
                    communities: 12,
                    min_size: 3,
                    max_size: 12,
                    size_exponent: 2.0,
                    density: 0.9,
                    background_edges: 120,
                },
                11,
            ),
        ),
    ];
    for seed in 0..3 {
        graphs.push((format!("gnm-{seed}"), gen::gnm(50, 320, seed)));
    }
    graphs
}

#[test]
fn improved_matches_naive_and_definition() {
    for (name, g) in suite() {
        let a = truss_decompose(&g);
        let b = truss_decompose_naive(&g);
        assert_eq!(a.trussness(), b.trussness(), "{name}");
        verify_decomposition(&g, &a).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn bottom_up_matches_improved() {
    for (name, g) in suite() {
        let exact = truss_decompose(&g);
        for budget in [1usize << 20, 6 * 1024] {
            let budget = budget.max(truss_decomposition::core::minimum_budget(&g, 64));
            let cfg = BottomUpConfig::new(IoConfig {
                memory_budget: budget,
                block_size: (budget / 8).max(64),
            });
            let (d, _) = bottom_up_decompose(&g, &cfg)
                .unwrap_or_else(|e| panic!("{name} budget {budget}: {e}"));
            assert_eq!(d.trussness(), exact.trussness(), "{name} budget {budget}");
        }
    }
}

#[test]
fn top_down_matches_improved() {
    for (name, g) in suite() {
        let exact = truss_decompose(&g);
        for budget in [1usize << 20, 6 * 1024] {
            let budget = budget.max(truss_decomposition::core::minimum_budget(&g, 64));
            let cfg = TopDownConfig::new(IoConfig {
                memory_budget: budget,
                block_size: (budget / 8).max(64),
            });
            let (res, _) = top_down_decompose(&g, &cfg)
                .unwrap_or_else(|e| panic!("{name} budget {budget}: {e}"));
            assert!(res.complete, "{name} budget {budget}");
            let d = res.to_decomposition(&g).unwrap();
            assert_eq!(d.trussness(), exact.trussness(), "{name} budget {budget}");
        }
    }
}

#[test]
fn mapreduce_matches_improved_on_small_graphs() {
    // The MR baseline is slow by design; exercise it on the smaller suite.
    for (name, g) in suite() {
        if g.num_edges() > 400 {
            continue;
        }
        let exact = truss_decompose(&g);
        let (d, _) = mr_truss_decompose(&g, IoConfig::with_budget(1 << 16))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(d.trussness(), exact.trussness(), "{name}");
    }
}

#[test]
fn dataset_analogues_consistent() {
    use truss_decomposition::graph::generators::datasets::all_datasets;
    for dataset in all_datasets() {
        // Cap the test size: the paper-scale edge counts differ by 4 orders
        // of magnitude, so choose the scale per dataset for ~8K edges.
        let scale = (8_000.0 / dataset.spec().paper.edges as f64).min(0.05);
        let g = dataset.build_scaled(scale, 77);
        let name = dataset.spec().name;
        let exact = truss_decompose(&g);
        verify_decomposition(&g, &exact).unwrap_or_else(|e| panic!("{name}: {e}"));
        // A budget that keeps candidate subgraphs in memory (the planted
        // near-cliques of the lj/web analogues dominate at tiny scales and
        // debug-mode pair-sweeps over them are prohibitively slow); stage 1
        // still partitions since its parts charge ~64 B per edge.
        let budget = (g.num_edges() * 80)
            .max(truss_decomposition::core::minimum_budget(&g, 64))
            .max(1 << 14);
        let cfg = BottomUpConfig::new(IoConfig {
            memory_budget: budget,
            block_size: (budget / 16).max(512),
        });
        let (d, _) = bottom_up_decompose(&g, &cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(d.trussness(), exact.trussness(), "{name}");
    }
}

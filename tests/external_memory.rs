//! External-memory behaviour: budget sweeps, I/O accounting sanity and
//! failure injection.

use truss_decomposition::core::bottom_up::{bottom_up_decompose, BottomUpConfig};
use truss_decomposition::core::decompose::truss_decompose;
use truss_decomposition::core::top_down::{top_down_decompose, TopDownConfig};
use truss_decomposition::graph::generators as gen;
use truss_decomposition::storage::{IoConfig, IoTracker, ScratchDir, StorageError};
use truss_decomposition::triangle::external::{
    edge_list_from_graph, external_edge_supports, PassConfig,
};

#[test]
fn budget_sweep_preserves_results() {
    let g = gen::gnm(70, 500, 21);
    let exact = truss_decompose(&g);
    let floor = truss_decomposition::core::minimum_budget(&g, 64);
    for budget in [1usize << 20, 1 << 14, 1 << 13] {
        let budget = budget.max(floor);
        let io = IoConfig {
            memory_budget: budget,
            block_size: (budget / 8).max(64),
        };
        let (bu, bu_report) = bottom_up_decompose(&g, &BottomUpConfig::new(io)).unwrap();
        assert_eq!(bu.trussness(), exact.trussness(), "bottom-up at {budget}");
        let (td, _) = top_down_decompose(&g, &TopDownConfig::new(io)).unwrap();
        assert_eq!(
            td.to_decomposition(&g).unwrap().trussness(),
            exact.trussness(),
            "top-down at {budget}"
        );
        assert!(bu_report.io.bytes_read > 0);
    }
}

#[test]
fn smaller_budget_means_more_io() {
    let g = gen::gnm(80, 600, 3);
    let floor = truss_decomposition::core::minimum_budget(&g, 64);
    let run = |budget: usize| {
        let io = IoConfig {
            memory_budget: budget.max(floor),
            block_size: 512,
        };
        let (_, report) = bottom_up_decompose(&g, &BottomUpConfig::new(io)).unwrap();
        report.io.bytes_read
    };
    let big = run(1 << 22);
    let small = run(1 << 13);
    assert!(
        small > big,
        "tiny budget should cost more I/O: {small} vs {big}"
    );
}

#[test]
fn hub_larger_than_budget_is_reported() {
    let g = gen::star(2000);
    let io = IoConfig {
        memory_budget: 1 << 12, // 4 KiB cannot hold a 2000-degree hub
        block_size: 256,
    };
    let err = bottom_up_decompose(&g, &BottomUpConfig::new(io)).unwrap_err();
    assert!(matches!(err, StorageError::BudgetTooSmall(_)), "{err}");
}

#[test]
fn corrupt_file_is_reported_not_panicking() {
    let scratch = ScratchDir::new().unwrap();
    let path = scratch.file("bad");
    std::fs::write(&path, [1u8; 37]).unwrap(); // not a record multiple
    let r = truss_decomposition::storage::EdgeListFile::open(path, IoTracker::new());
    assert!(matches!(r, Err(StorageError::Corrupt(_))));
}

#[test]
fn external_supports_io_scales_with_iterations() {
    let g = gen::gnm(90, 700, 8);
    let floor = g.max_degree() * 40; // support pass charges 32 B/half-edge
    let mut reads = Vec::new();
    for budget in [1usize << 20, (1 << 14).max(floor)] {
        let scratch = ScratchDir::new().unwrap();
        let tracker = IoTracker::new();
        let input = edge_list_from_graph(&g, scratch.file("g"), tracker.clone()).unwrap();
        let cfg = PassConfig::new(IoConfig {
            memory_budget: budget,
            block_size: 512,
        });
        let out =
            external_edge_supports(&input, g.num_vertices(), &scratch, &tracker, &cfg).unwrap();
        assert_eq!(out.finalized.len() as usize, g.num_edges());
        reads.push(tracker.stats(&cfg.io).bytes_read);
    }
    assert!(reads[1] > reads[0]);
}

#[test]
fn scratch_space_is_reclaimed() {
    let before: Vec<_> = std::fs::read_dir(std::env::temp_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("truss-scratch"))
        .collect();
    {
        let g = gen::gnm(40, 200, 1);
        let io = IoConfig::with_budget(1 << 14);
        let _ = bottom_up_decompose(&g, &BottomUpConfig::new(io)).unwrap();
    }
    let after: Vec<_> = std::fs::read_dir(std::env::temp_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("truss-scratch"))
        .collect();
    assert!(after.len() <= before.len(), "scratch dirs leaked");
}

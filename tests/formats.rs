//! Cross-format round trips and the decomposition's invariance under
//! relabeling and serialization.

use truss_decomposition::core::decompose::truss_decompose;
use truss_decomposition::graph::generators as gen;
use truss_decomposition::graph::{io as gio, permute};

#[test]
fn snap_binary_metis_round_trips_agree() {
    let g = gen::overlapping_communities(
        gen::CommunityConfig {
            n: 90,
            communities: 9,
            min_size: 3,
            max_size: 10,
            size_exponent: 2.0,
            density: 1.0,
            background_edges: 80,
        },
        5,
    );
    let mut snap = Vec::new();
    gio::write_snap(&g, &mut snap).unwrap();
    let mut binary = Vec::new();
    gio::write_binary(&g, &mut binary).unwrap();
    let mut metis = Vec::new();
    gio::write_metis(&g, &mut metis).unwrap();

    let g_binary = gio::read_binary(&binary[..]).unwrap();
    let g_metis = gio::read_metis(&metis[..]).unwrap();
    assert_eq!(g.edges(), g_binary.edges());
    assert_eq!(g.edges(), g_metis.edges());
    // SNAP compacts ids, so compare via decomposition class sizes.
    let g_snap = gio::read_snap(&snap[..]).unwrap();
    assert_eq!(
        truss_decompose(&g).class_sizes(),
        truss_decompose(&g_snap).class_sizes()
    );
}

/// SNAP → binary → SNAP chained round trip: vertex/edge counts and the
/// full trussness vector survive every hop.
#[test]
fn snap_binary_snap_chain_preserves_counts_and_trussness() {
    let g = gen::erdos_renyi::gnm(80, 520, 21);

    let mut snap1 = Vec::new();
    gio::write_snap(&g, &mut snap1).unwrap();
    // First hop may compact ids (SNAP cannot represent isolated vertices);
    // every later hop must be exactly stable.
    let g1 = gio::read_snap(&snap1[..]).unwrap();

    let mut bin = Vec::new();
    gio::write_binary(&g1, &mut bin).unwrap();
    let g2 = gio::read_binary(&bin[..]).unwrap();
    assert_eq!(g1.num_vertices(), g2.num_vertices());
    assert_eq!(g1.num_edges(), g2.num_edges());
    assert_eq!(g1.edges(), g2.edges());

    let mut snap2 = Vec::new();
    gio::write_snap(&g2, &mut snap2).unwrap();
    let g3 = gio::read_snap(&snap2[..]).unwrap();
    assert_eq!(g1.num_vertices(), g3.num_vertices());
    assert_eq!(g1.num_edges(), g3.num_edges());
    assert_eq!(g1.edges(), g3.edges());

    let base = truss_decompose(&g1);
    assert_eq!(base.trussness(), truss_decompose(&g2).trussness());
    assert_eq!(base.trussness(), truss_decompose(&g3).trussness());
    // And against the original graph, counts survive modulo compaction.
    assert_eq!(g.num_edges(), g1.num_edges());
    assert_eq!(base.class_sizes(), truss_decompose(&g).class_sizes());
}

/// METIS import preserves counts (including isolated vertices — the format
/// carries an explicit vertex count) and the per-edge trussness.
#[test]
fn metis_import_preserves_counts_and_trussness() {
    let g = gen::watts_strogatz(70, 6, 0.3, 8);
    let mut metis = Vec::new();
    gio::write_metis(&g, &mut metis).unwrap();
    let g2 = gio::read_metis(&metis[..]).unwrap();
    assert_eq!(g.num_vertices(), g2.num_vertices());
    assert_eq!(g.num_edges(), g2.num_edges());
    assert_eq!(g.edges(), g2.edges());
    assert_eq!(
        truss_decompose(&g).trussness(),
        truss_decompose(&g2).trussness()
    );
}

#[test]
fn decomposition_invariant_under_relabeling() {
    let g = gen::erdos_renyi::gnm(70, 450, 13);
    let base = truss_decompose(&g);
    for perm in [permute::degree_order(&g), permute::bfs_order(&g)] {
        let g2 = perm.relabel(&g);
        let d2 = truss_decompose(&g2);
        assert_eq!(base.class_sizes(), d2.class_sizes());
        assert_eq!(base.k_max(), d2.k_max());
        // Per-edge: trussness of (u,v) equals trussness of (perm u, perm v).
        for (id, e) in g.iter_edges() {
            let id2 = g2.edge_id(perm.apply(e.u), perm.apply(e.v)).unwrap();
            assert_eq!(base.edge_trussness(id), d2.edge_trussness(id2));
        }
    }
}

#[test]
fn external_core_matches_in_memory_on_datasets() {
    use truss_decomposition::core::core_decomposition::core_decompose;
    use truss_decomposition::core::core_external::external_core_decompose;
    use truss_decomposition::storage::{IoConfig, IoTracker, ScratchDir};
    use truss_decomposition::triangle::external::edge_list_from_graph;

    for dataset in [
        truss_decomposition::graph::generators::datasets::Dataset::Hep,
        truss_decomposition::graph::generators::datasets::Dataset::Btc,
    ] {
        let scale = (6_000.0 / dataset.spec().paper.edges as f64).min(0.05);
        let g = dataset.build_scaled(scale, 5);
        let exact = core_decompose(&g);
        let scratch = ScratchDir::new().unwrap();
        let tracker = IoTracker::new();
        let edges = edge_list_from_graph(&g, scratch.file("g"), tracker.clone()).unwrap();
        let io = IoConfig::with_budget(1 << 14);
        let (ext, _) =
            external_core_decompose(&edges, g.num_vertices(), &scratch, &tracker, &io).unwrap();
        assert_eq!(ext.core_numbers(), exact.core_numbers());
    }
}

#[test]
fn topdown_without_cleanup_still_correct() {
    use truss_decomposition::core::top_down::{top_down_decompose, TopDownConfig};
    use truss_decomposition::storage::IoConfig;

    let g = gen::erdos_renyi::gnm(50, 340, 4);
    let exact = truss_decompose(&g);
    for (kinit, cleanup) in [(false, false), (true, false), (false, true)] {
        let mut cfg = TopDownConfig::new(IoConfig::with_budget(1 << 20));
        cfg.use_kinit = kinit;
        cfg.use_cleanup = cleanup;
        let (res, _) = top_down_decompose(&g, &cfg).unwrap();
        assert!(res.complete);
        assert_eq!(
            res.to_decomposition(&g).unwrap().trussness(),
            exact.trussness(),
            "kinit={kinit} cleanup={cleanup}"
        );
    }
}

/// A graph whose highest-id vertices are isolated survives a binary
/// round trip: the v1 reader must honor the stored vertex count instead
/// of inferring `n` from the max edge endpoint (regression — the header
/// count used to be read and discarded).
#[test]
fn binary_round_trip_preserves_trailing_isolated_vertices() {
    use truss_decomposition::graph::CsrGraph;
    let g = truss_decomposition::graph::CsrGraph::with_min_vertices(
        CsrGraph::from_edges(vec![
            truss_decomposition::graph::Edge::new(0, 1),
            truss_decomposition::graph::Edge::new(1, 2),
        ]),
        7,
    );
    let mut bin = Vec::new();
    gio::write_binary(&g, &mut bin).unwrap();
    let g2 = gio::read_binary(&bin[..]).unwrap();
    assert_eq!(g2.num_vertices(), 7);
    assert_eq!(g2.degree(6), 0);
    assert_eq!(g.edges(), g2.edges());

    // And through the v2 snapshot, which carries `n` explicitly.
    let mut snap = Vec::new();
    truss_decomposition::storage::write_graph_snapshot(&g, &mut snap).unwrap();
    let dir = std::env::temp_dir().join(format!("truss-fmt-iso-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join("iso.gr2");
    std::fs::write(&p, &snap).unwrap();
    let g3 = truss_decomposition::storage::open_graph_snapshot(
        &p,
        truss_decomposition::storage::LoadMode::Auto,
    )
    .unwrap();
    assert_eq!(g3.num_vertices(), 7);
    assert_eq!(g.edges(), g3.edges());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// v1 → v2 → v1 must round-trip bit-identically for graphs, and the
/// v2 → v1 → v2 direction for snapshots (both formats are canonical
/// serializations of the same structure).
#[test]
fn graph_v1_v2_migration_is_bit_identical() {
    use truss_decomposition::storage::{self, LoadMode};
    let g = gen::erdos_renyi::gnm(70, 400, 33);
    let dir = std::env::temp_dir().join(format!("truss-fmt-migrate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // v1 bytes → load → write v2 → open → write v1 again.
    let mut v1 = Vec::new();
    gio::write_binary(&g, &mut v1).unwrap();
    let p1 = dir.join("g.bin");
    std::fs::write(&p1, &v1).unwrap();
    let loaded = storage::load_graph_auto(&p1, LoadMode::Auto).unwrap();
    let p2 = dir.join("g.gr2");
    storage::write_graph_snapshot(&loaded, std::fs::File::create(&p2).unwrap()).unwrap();
    let reopened = storage::open_graph_snapshot(&p2, LoadMode::Auto).unwrap();
    let mut v1_again = Vec::new();
    gio::write_binary(&reopened, &mut v1_again).unwrap();
    assert_eq!(v1, v1_again, "v1 -> v2 -> v1 must be bit-identical");

    // And v2 -> v1 -> v2.
    let mut v2_again = Vec::new();
    storage::write_graph_snapshot(
        &storage::load_graph_auto(&p1, LoadMode::Auto).unwrap(),
        &mut v2_again,
    )
    .unwrap();
    assert_eq!(std::fs::read(&p2).unwrap(), v2_again);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The same bit-identical migration for index files, through the typed
/// TrussIndex save/load API the CLI `truss convert` uses.
#[test]
fn index_v1_v2_migration_is_bit_identical() {
    use truss_decomposition::core::index::IndexFormat;
    use truss_decomposition::prelude::TrussIndex;
    let g = gen::watts_strogatz(50, 6, 0.2, 19);
    let dir = std::env::temp_dir().join(format!("truss-fmt-imigrate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let index = TrussIndex::from_decompose(g);

    let p1 = dir.join("i.v1.tix");
    let p2 = dir.join("i.v2.tix");
    index.save_as(&p1, IndexFormat::V1).unwrap();
    index.save_as(&p2, IndexFormat::V2).unwrap();

    // v1 -> v2 -> v1.
    let (from_v1, f1) =
        TrussIndex::load_with(&p1, truss_decomposition::storage::LoadMode::Auto).unwrap();
    assert_eq!(f1, IndexFormat::V1);
    let p2b = dir.join("i.v2b.tix");
    from_v1.save_as(&p2b, IndexFormat::V2).unwrap();
    assert_eq!(std::fs::read(&p2).unwrap(), std::fs::read(&p2b).unwrap());

    let (from_v2, f2) =
        TrussIndex::load_with(&p2b, truss_decomposition::storage::LoadMode::Auto).unwrap();
    assert_eq!(f2, IndexFormat::V2);
    let p1b = dir.join("i.v1b.tix");
    from_v2.save_as(&p1b, IndexFormat::V1).unwrap();
    assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p1b).unwrap());
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Integration tests of the persistent `TrussIndex`: disk round-trips and
//! property-based cross-checks that incremental insert/delete maintenance
//! produces edge-for-edge identical truss numbers to from-scratch
//! recomputation, on Erdős–Rényi and R-MAT graphs.

use proptest::prelude::*;
use truss_decomposition::graph::generators as gen;
use truss_decomposition::prelude::*;

/// The incremental result must equal a from-scratch decomposition of the
/// index's current graph.
fn assert_matches_scratch(index: &TrussIndex, label: &str) {
    let scratch = truss_decompose(index.graph());
    assert_eq!(index.trussness(), scratch.trussness(), "{label}");
    assert_eq!(index.max_k(), scratch.k_max(), "{label}: k_max");
}

/// Strategy: a random simple graph with up to `n` vertices and `m` raw
/// edges (same shape as tests/properties.rs).
fn arb_graph(n: u32, m: usize) -> impl Strategy<Value = CsrGraph> {
    prop::collection::vec((0..n, 0..n), 1..m).prop_map(|pairs| {
        let edges: Vec<Edge> = pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Edge::new(a, b))
            .collect();
        CsrGraph::from_edges(edges)
    })
}

/// Strategy: a batch of operations `(a, b, op)` over vertex ids `0..n`;
/// `op == 0` inserts the edge, anything else removes it.
fn arb_ops(n: u32, len: usize) -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    prop::collection::vec((0..n, 0..n, 0..2u32), 1..len)
}

fn delta_from_ops(ops: &[(u32, u32, u32)]) -> EdgeDelta {
    let mut delta = EdgeDelta::new();
    for &(a, b, op) in ops {
        if a == b {
            continue;
        }
        if op == 0 {
            delta.insert.push(Edge::new(a, b));
        } else {
            delta.remove.push(Edge::new(a, b));
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Erdős–Rényi-style random graphs under random mixed batches.
    #[test]
    fn er_random_batches_match_scratch(
        g in arb_graph(36, 260),
        ops in arb_ops(40, 40),
    ) {
        let mut index = TrussIndex::from_decompose(g);
        let delta = delta_from_ops(&ops);
        let stats = index.apply(&delta);
        prop_assert_eq!(stats.applied() + stats.skipped, {
            let mut d = delta.clone();
            d.normalize();
            d.len()
        });
        assert_matches_scratch(&index, "ER mixed batch");
    }

    /// Repeated batches drift the graph far from the indexed original;
    /// every intermediate state must stay exact.
    #[test]
    fn er_repeated_batches_match_scratch(
        g in arb_graph(28, 160),
        rounds in prop::collection::vec(arb_ops(32, 16), 1..4),
    ) {
        let mut index = TrussIndex::from_decompose(g);
        for (i, ops) in rounds.iter().enumerate() {
            index.apply(&delta_from_ops(ops));
            assert_matches_scratch(&index, &format!("round {i}"));
        }
    }

    /// R-MAT graphs: hold out a slice of edges, index the rest, insert the
    /// holdout back as one batch, then delete a spaced batch — both steps
    /// must match from-scratch recomputation.
    #[test]
    fn rmat_insert_and_delete_batches_match_scratch(
        seed in 0u64..512,
        holdout in 2usize..7,
    ) {
        let g = gen::rmat(gen::RmatConfig::skewed(6, 420), seed);
        let all: Vec<Edge> = g.edges().to_vec();
        let held: Vec<Edge> = all.iter().copied().step_by(holdout).collect();
        let base: Vec<Edge> = all
            .iter()
            .copied()
            .filter(|e| !held.contains(e))
            .collect();
        let mut index = TrussIndex::from_decompose(CsrGraph::from_edges(base));
        let stats = index.insert_edges(&held);
        prop_assert_eq!(stats.inserted, held.len());
        assert_matches_scratch(&index, "R-MAT insert holdout");
        // The restored graph must decompose identically to the original.
        let full = truss_decompose(&g);
        prop_assert_eq!(index.trussness(), full.trussness());

        let victims: Vec<Edge> = all.iter().copied().skip(1).step_by(holdout + 1).collect();
        index.remove_edges(&victims);
        assert_matches_scratch(&index, "R-MAT delete batch");
    }
}

#[test]
fn save_load_round_trip_preserves_queries_and_updates() {
    let g = gen::figure2_graph();
    let index = TrussIndex::from_decompose(g);
    let path = std::env::temp_dir().join(format!("truss-it-index-{}.tix", std::process::id()));
    index.save(&path).unwrap();
    let mut back = TrussIndex::load(&path).unwrap();
    assert_eq!(back.trussness(), index.trussness());
    assert_eq!(back.spectrum().class_sizes, index.spectrum().class_sizes);
    assert_eq!(back.k_truss_communities(4).len(), 2);

    // A loaded index accepts updates like a freshly built one.
    back.apply(&EdgeDelta {
        insert: vec![Edge::new(4, 7)],
        remove: vec![Edge::new(0, 1)],
    });
    assert_matches_scratch(&back, "updates after load");
    back.save(&path).unwrap();
    let again = TrussIndex::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(again.trussness(), back.trussness());
}

#[test]
fn engine_build_index_serves_queries() {
    // `TrussEngine::build_index` promotes any engine's run into the
    // servable artifact.
    let g = gen::figure2_graph();
    let engines = registry();
    let engine = engines.by_name("topdown").expect("registered");
    let (index, report) = engine
        .build_index(EngineInput::Graph(&g), &EngineConfig::sized_for(&g))
        .unwrap();
    assert_eq!(report.k_max, 5);
    assert_eq!(index.truss_of(0, 1), Some(5));
    assert_eq!(index.k_truss_edge_ids(5).len(), 10);
}

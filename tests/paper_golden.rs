//! Golden tests against every worked example in the paper.

use std::collections::BTreeMap;
use truss_decomposition::core::bottom_up::{bottom_up_decompose, BottomUpConfig};
use truss_decomposition::core::core_decomposition::core_decompose;
use truss_decomposition::core::decompose::truss_decompose;
use truss_decomposition::core::top_down::{top_down_decompose, TopDownConfig};
use truss_decomposition::core::truss::{truss_subgraph, truss_subgraph_edges};
use truss_decomposition::graph::generators::figures::*;
use truss_decomposition::graph::metrics::average_local_clustering;
use truss_decomposition::graph::subgraph;
use truss_decomposition::graph::Edge;
use truss_decomposition::storage::IoConfig;

/// Example 2: the exact k-classes of Figure 2.
#[test]
fn example2_classes() {
    let g = figure2_graph();
    let d = truss_decompose(&g);
    assert_eq!(d.k_max(), 5);
    assert_eq!(d.classes_as_edges(&g), figure2_classes());
}

/// Example 1 / Figure 1: 3-core vs 4-truss of the manager graph.
#[test]
fn example1_manager_graph() {
    let g = manager_graph();
    let d = truss_decompose(&g);
    let cores = core_decompose(&g);

    // No 5-truss, no 4-core.
    assert_eq!(d.k_max(), 4);
    assert_eq!(cores.c_max(), 3);

    // The 4-truss is exactly the union of the five 4-cliques.
    assert_eq!(truss_subgraph_edges(&g, &d, 4), manager_graph_4truss());

    // The 3-core drops only the small periphery (vertices 6 and 9).
    let core3: Vec<u32> = cores.core_vertices(3);
    assert_eq!(core3.len(), 19);
    assert!(!core3.contains(&5) && !core3.contains(&8)); // ids 6,9 are 5,8 zero-based

    // CC(G) < CC(3-core) < CC(4-truss) — the "truss filters the core" story.
    let cc_g = average_local_clustering(&g);
    let three_core = subgraph::induced(&g, &core3);
    let cc_core = average_local_clustering(&three_core.graph);
    let cc_truss = average_local_clustering(&truss_subgraph(&g, &d, 4));
    assert!(
        cc_g < cc_core && cc_core < cc_truss,
        "CC ordering violated: {cc_g:.3} / {cc_core:.3} / {cc_truss:.3}"
    );
    assert!(cc_truss > 0.75, "4-truss should be strongly clustered");
}

/// Example 3: local decomposition of NS(P1) under the fixed partition gives
/// local 2-class {(d,l), (g,l)} and local 4-class on the rest.
#[test]
fn example3_partition_local_classes() {
    let g = figure2_graph();
    let parts = figure2_partition();

    let name_edge = |e: Edge, ns: &subgraph::NeighborhoodSubgraph| -> (usize, usize) {
        let p = ns.sub.parent_edge(e);
        (p.u as usize, p.v as usize)
    };

    // NS(P1), P1 = {a, b, c, l}.
    let ns1 = subgraph::neighborhood(&g, &parts[0]);
    assert_eq!(ns1.sub.graph.num_edges(), 11);
    let local1 = truss_decompose(&ns1.sub.graph);
    let mut class2: Vec<(usize, usize)> = ns1
        .sub
        .graph
        .iter_edges()
        .filter(|&(id, _)| local1.edge_trussness(id) == 2)
        .map(|(_, e)| name_edge(e, &ns1))
        .collect();
    class2.sort_unstable();
    // (d,l) = (3,11) and (g,l) = (6,11).
    assert_eq!(class2, vec![(3, 11), (6, 11)]);
    // Everything else is local class 4 ("the remaining edges belong to Φ4(P1)").
    for (id, _) in ns1.sub.graph.iter_edges() {
        let t = local1.edge_trussness(id);
        assert!(t == 2 || t == 4, "unexpected local class {t}");
    }

    // NS(P2), P2 = {d, e, f, g}: local Φ2(P2) = {(f,i), (f,j)}.
    let ns2 = subgraph::neighborhood(&g, &parts[1]);
    let local2 = truss_decompose(&ns2.sub.graph);
    let mut class2: Vec<(usize, usize)> = ns2
        .sub
        .graph
        .iter_edges()
        .filter(|&(id, _)| local2.edge_trussness(id) == 2)
        .map(|(_, e)| name_edge(e, &ns2))
        .collect();
    class2.sort_unstable();
    // (f,i) = (5,8), (f,j) = (5,9).
    assert_eq!(class2, vec![(5, 8), (5, 9)]);
}

/// Examples 4–5: top-down with t = 2 computes Φ5 = K5{a..e} and
/// Φ4 = K4{f,h,i,j}, exactly as the paper walks through.
#[test]
fn example5_top_down_walkthrough() {
    let g = figure2_graph();
    let mut cfg = TopDownConfig::new(IoConfig::with_budget(1 << 20)).top_t(2);
    cfg.use_kinit = false;
    let (res, report) = top_down_decompose(&g, &cfg).unwrap();
    assert_eq!(report.k_first, 5, "ψ bounds are tight on Figure 2");
    assert_eq!(res.k_max, 5);
    assert!(!res.complete);
    let expected: BTreeMap<u32, Vec<Edge>> = figure2_classes()
        .into_iter()
        .filter(|&(k, _)| k >= 4)
        .collect();
    assert_eq!(res.classes, expected);
}

/// Example 3 continued: the bottom-up pipeline reproduces the same classes
/// under a budget that forces the three-part regime.
#[test]
fn example3_bottom_up_small_budget() {
    let g = figure2_graph();
    // ~28 edges total; budget for roughly a third of the graph.
    let cfg = BottomUpConfig::new(IoConfig {
        memory_budget: 20 * 64,
        block_size: 64,
    });
    let (d, report) = bottom_up_decompose(&g, &cfg).unwrap();
    assert_eq!(d.classes_as_edges(&g), figure2_classes());
    assert!(report.lower_bound_iterations >= 1);
}

//! Property-based tests (proptest) of the decomposition invariants on
//! random graphs.

use proptest::prelude::*;
use truss_decomposition::core::core_decomposition::core_decompose;
use truss_decomposition::core::decompose::{truss_decompose, truss_decompose_naive};
use truss_decomposition::core::truss::{is_k_truss, peel_to_k_truss, truss_subgraph_edges};
use truss_decomposition::graph::{CsrGraph, Edge};
use truss_decomposition::triangle::count::{edge_supports, triangle_count};

/// Strategy: a random simple graph with up to `n` vertices and `m` raw edges.
fn arb_graph(n: u32, m: usize) -> impl Strategy<Value = CsrGraph> {
    prop::collection::vec((0..n, 0..n), 1..m).prop_map(|pairs| {
        let edges: Vec<Edge> = pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Edge::new(a, b))
            .collect();
        CsrGraph::from_edges(edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Definition: every edge of the k-truss has ≥ k−2 triangles inside it.
    #[test]
    fn truss_satisfies_definition(g in arb_graph(40, 300)) {
        let d = truss_decompose(&g);
        for k in 2..=d.k_max() {
            let edges = truss_subgraph_edges(&g, &d, k);
            prop_assert!(is_k_truss(&edges, k), "k = {k}");
        }
    }

    /// Maximality: the claimed k-truss equals the peeling fixpoint.
    #[test]
    fn truss_is_maximal(g in arb_graph(32, 200)) {
        let d = truss_decompose(&g);
        for k in 2..=d.k_max() + 1 {
            let mut claimed = d.truss_edge_ids(k);
            claimed.sort_unstable();
            let mut actual = peel_to_k_truss(&g, k);
            actual.sort_unstable();
            prop_assert_eq!(&claimed, &actual, "k = {}", k);
        }
    }

    /// Hierarchy: T_{k+1} ⊆ T_k.
    #[test]
    fn trusses_are_nested(g in arb_graph(40, 300)) {
        let d = truss_decompose(&g);
        for k in 2..=d.k_max() {
            let upper = d.truss_edge_ids(k + 1);
            let lower: std::collections::HashSet<u32> =
                d.truss_edge_ids(k).into_iter().collect();
            prop_assert!(upper.iter().all(|e| lower.contains(e)));
        }
    }

    /// Algorithm 1 and Algorithm 2 agree.
    #[test]
    fn naive_equals_improved(g in arb_graph(36, 260)) {
        let a = truss_decompose(&g);
        let b = truss_decompose_naive(&g);
        prop_assert_eq!(a.trussness(), b.trussness());
    }

    /// A k-truss is a (k−1)-core (§1): every vertex of T_k has core number
    /// ≥ k−1.
    #[test]
    fn truss_inside_core(g in arb_graph(40, 300)) {
        let d = truss_decompose(&g);
        let cores = core_decompose(&g);
        for id in d.truss_edge_ids(d.k_max()) {
            let e = g.edge(id);
            prop_assert!(cores.core_of(e.u) >= d.k_max() - 1);
            prop_assert!(cores.core_of(e.v) >= d.k_max() - 1);
        }
    }

    /// Support bookkeeping: Σ sup(e) = 3 · #triangles, and trussness of an
    /// edge never exceeds sup(e) + 2.
    #[test]
    fn supports_consistent(g in arb_graph(40, 300)) {
        let sup = edge_supports(&g);
        let total: u64 = sup.iter().map(|&s| s as u64).sum();
        prop_assert_eq!(total, 3 * triangle_count(&g));
        let d = truss_decompose(&g);
        for (i, &s) in sup.iter().enumerate() {
            prop_assert!(d.edge_trussness(i as u32) <= s + 2);
        }
    }

    /// k_max lower-bounds the largest clique: an n-clique forces k_max ≥ n.
    #[test]
    fn planted_clique_bounds_kmax(g in arb_graph(36, 150), size in 4u32..9) {
        let planted = truss_decomposition::graph::generators::planted::planted_clique(
            &g, size as usize, 99,
        );
        let d = truss_decompose(&planted);
        prop_assert!(d.k_max() >= size);
    }
}

//! Property-based tests (proptest) of the decomposition invariants on
//! random graphs.

use proptest::prelude::*;
use truss_decomposition::core::core_decomposition::core_decompose;
use truss_decomposition::core::decompose::{truss_decompose, truss_decompose_naive};
use truss_decomposition::core::outofcore::spill::SpillDrain;
use truss_decomposition::core::outofcore::state::StateFile;
use truss_decomposition::core::outofcore::support::sharded_supports;
use truss_decomposition::core::outofcore::{outofcore_decompose_in, OutOfCoreConfig, ShardPlan};
use truss_decomposition::core::pool::ThreadPool;
use truss_decomposition::core::truss::{is_k_truss, peel_to_k_truss, truss_subgraph_edges};
use truss_decomposition::graph::generators::{rmat, RmatConfig};
use truss_decomposition::graph::{CsrGraph, Edge};
use truss_decomposition::storage::{IoConfig, IoTracker, ScratchDir, Window};
use truss_decomposition::triangle::count::{edge_supports, triangle_count};
use truss_decomposition::triangle::{intersect_hybrid, intersect_merge, FwdList};

/// Shard counts every out-of-core property is checked against: serial,
/// even splits, an odd count that never divides the vertex range evenly.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Strategy: a random simple graph with up to `n` vertices and `m` raw edges.
fn arb_graph(n: u32, m: usize) -> impl Strategy<Value = CsrGraph> {
    prop::collection::vec((0..n, 0..n), 1..m).prop_map(|pairs| {
        let edges: Vec<Edge> = pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Edge::new(a, b))
            .collect();
        CsrGraph::from_edges(edges)
    })
}

/// Owned columns backing a [`FwdList`]: strictly-ascending unique ranks
/// with deterministic vertex/edge-id payloads, so every emitted triple can
/// be traced back to the generating rank.
#[derive(Debug, Clone)]
struct Cols {
    ranks: Vec<u32>,
    verts: Vec<u32>,
    edge_ids: Vec<u32>,
}

impl Cols {
    fn from_ranks(mut ranks: Vec<u32>, salt: u32) -> Cols {
        ranks.sort_unstable();
        ranks.dedup();
        let verts = ranks.clone();
        let edge_ids = ranks
            .iter()
            .map(|r| r.wrapping_mul(31).wrapping_add(salt))
            .collect();
        Cols {
            ranks,
            verts,
            edge_ids,
        }
    }

    fn list(&self) -> FwdList<'_> {
        FwdList {
            ranks: &self.ranks,
            verts: &self.verts,
            edge_ids: &self.edge_ids,
        }
    }
}

/// Collects an intersection kernel's output.
fn run_kernel(
    f: impl FnOnce(FwdList<'_>, FwdList<'_>, &mut dyn FnMut(u32, u32, u32)),
    a: &Cols,
    b: &Cols,
) -> Vec<(u32, u32, u32)> {
    let mut out = Vec::new();
    f(a.list(), b.list(), &mut |w, e1, e2| out.push((w, e1, e2)));
    out
}

/// Both kernels, both argument orders, on one pair of lists.
fn assert_kernels_agree(a: &Cols, b: &Cols) {
    let merge = run_kernel(|x, y, f| intersect_merge(x, y, f), a, b);
    let hybrid = run_kernel(|x, y, f| intersect_hybrid(x, y, f), a, b);
    assert_eq!(merge, hybrid, "a={a:?} b={b:?}");
    let merge_r = run_kernel(|x, y, f| intersect_merge(x, y, f), b, a);
    let hybrid_r = run_kernel(|x, y, f| intersect_hybrid(x, y, f), b, a);
    assert_eq!(merge_r, hybrid_r, "reversed, a={a:?} b={b:?}");
}

/// Deterministic adversarial pairs for the hybrid intersection kernel:
/// empty, singleton, disjoint, nested, and power-law-skewed lengths — the
/// shapes that exercise the gallop/merge cutoff and the gallop cursor.
#[test]
fn intersection_kernels_agree_on_adversarial_shapes() {
    let long: Vec<u32> = (0..1000).collect();
    let sparse: Vec<u32> = (0..1000).step_by(97).collect();
    let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
        (vec![], vec![]),
        (vec![], long.clone()),
        (vec![7], long.clone()),    // singleton hit
        (vec![1001], long.clone()), // singleton miss past the end
        (vec![0], long.clone()),    // singleton hit at the front
        (
            (0..40).map(|x| 2 * x).collect(),
            (0..40).map(|x| 2 * x + 1).collect(),
        ), // interleaved, disjoint
        ((0..500).collect(), (2000..2100).collect()), // disjoint ranges
        ((100..200).collect(), long.clone()), // nested run
        (sparse.clone(), long.clone()), // power-law-ish skew, all hits
        (vec![3, 500, 999], long.clone()), // far-apart gallop jumps
        (long.clone(), long.clone()), // identical
    ];
    for (a, b) in cases {
        assert_kernels_agree(&Cols::from_ranks(a, 1), &Cols::from_ranks(b, 1_000_000));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The hybrid merge/galloping intersection emits exactly what the
    /// plain merge emits, on randomly skewed list pairs (the short side
    /// stays under the gallop cutoff often enough to exercise both
    /// kernels).
    #[test]
    fn hybrid_intersection_matches_merge(
        short in prop::collection::vec(0u32..600, 0..12),
        long in prop::collection::vec(0u32..600, 0..400),
    ) {
        let a = Cols::from_ranks(short, 7);
        let b = Cols::from_ranks(long, 9_999_999);
        assert_kernels_agree(&a, &b);
    }

    /// Same, on similar-length pairs (the merge side of the cutoff).
    #[test]
    fn hybrid_intersection_matches_merge_balanced(
        xs in prop::collection::vec(0u32..300, 0..120),
        ys in prop::collection::vec(0u32..300, 0..120),
    ) {
        assert_kernels_agree(&Cols::from_ranks(xs, 3), &Cols::from_ranks(ys, 5_000_000));
    }

    /// Definition: every edge of the k-truss has ≥ k−2 triangles inside it.
    #[test]
    fn truss_satisfies_definition(g in arb_graph(40, 300)) {
        let d = truss_decompose(&g);
        for k in 2..=d.k_max() {
            let edges = truss_subgraph_edges(&g, &d, k);
            prop_assert!(is_k_truss(&edges, k), "k = {k}");
        }
    }

    /// Maximality: the claimed k-truss equals the peeling fixpoint.
    #[test]
    fn truss_is_maximal(g in arb_graph(32, 200)) {
        let d = truss_decompose(&g);
        for k in 2..=d.k_max() + 1 {
            let mut claimed = d.truss_edge_ids(k);
            claimed.sort_unstable();
            let mut actual = peel_to_k_truss(&g, k);
            actual.sort_unstable();
            prop_assert_eq!(&claimed, &actual, "k = {}", k);
        }
    }

    /// Hierarchy: T_{k+1} ⊆ T_k.
    #[test]
    fn trusses_are_nested(g in arb_graph(40, 300)) {
        let d = truss_decompose(&g);
        for k in 2..=d.k_max() {
            let upper = d.truss_edge_ids(k + 1);
            let lower: std::collections::HashSet<u32> =
                d.truss_edge_ids(k).into_iter().collect();
            prop_assert!(upper.iter().all(|e| lower.contains(e)));
        }
    }

    /// Algorithm 1 and Algorithm 2 agree.
    #[test]
    fn naive_equals_improved(g in arb_graph(36, 260)) {
        let a = truss_decompose(&g);
        let b = truss_decompose_naive(&g);
        prop_assert_eq!(a.trussness(), b.trussness());
    }

    /// A k-truss is a (k−1)-core (§1): every vertex of T_k has core number
    /// ≥ k−1.
    #[test]
    fn truss_inside_core(g in arb_graph(40, 300)) {
        let d = truss_decompose(&g);
        let cores = core_decompose(&g);
        for id in d.truss_edge_ids(d.k_max()) {
            let e = g.edge(id);
            prop_assert!(cores.core_of(e.u) >= d.k_max() - 1);
            prop_assert!(cores.core_of(e.v) >= d.k_max() - 1);
        }
    }

    /// Support bookkeeping: Σ sup(e) = 3 · #triangles, and trussness of an
    /// edge never exceeds sup(e) + 2.
    #[test]
    fn supports_consistent(g in arb_graph(40, 300)) {
        let sup = edge_supports(&g);
        let total: u64 = sup.iter().map(|&s| s as u64).sum();
        prop_assert_eq!(total, 3 * triangle_count(&g));
        let d = truss_decompose(&g);
        for (i, &s) in sup.iter().enumerate() {
            prop_assert!(d.edge_trussness(i as u32) <= s + 2);
        }
    }

    /// k_max lower-bounds the largest clique: an n-clique forces k_max ≥ n.
    #[test]
    fn planted_clique_bounds_kmax(g in arb_graph(36, 150), size in 4u32..9) {
        let planted = truss_decomposition::graph::generators::planted::planted_clique(
            &g, size as usize, 99,
        );
        let d = truss_decompose(&planted);
        prop_assert!(d.k_max() >= size);
    }
}

/// Runs the windowed, sharded support-init pass on `threads` workers and
/// returns the per-edge supports it left in the spilled state file. A
/// deliberately tiny window budget and spill-buffer cap force evictions
/// and disk traffic even on proptest-sized graphs.
fn outofcore_supports(
    g: &CsrGraph,
    shards: usize,
    window_budget: usize,
    threads: usize,
) -> Vec<u32> {
    let scratch = ScratchDir::new().unwrap();
    let tracker = IoTracker::new();
    let plan = ShardPlan::new(g, shards);
    let mut window = Window::new(window_budget, g.is_mapped());
    let ranks = truss_decomposition::triangle::list::ranks(g);
    let sup = StateFile::create(&scratch, "sup", g.num_edges(), tracker.clone()).unwrap();
    let mut min_sup = vec![u32::MAX; plan.num_shards()];
    let pool = ThreadPool::unclamped(threads);
    let drain = SpillDrain::spawn(tracker.clone());
    sharded_supports(
        g,
        &plan,
        &ranks,
        &mut window,
        &scratch,
        &tracker,
        16,
        &sup,
        &mut min_sup,
        &pool,
        &drain,
    )
    .unwrap();
    sup.read_all().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The windowed, sharded support init computes exactly the in-memory
    /// triangle counts on random ER graphs, for every shard count —
    /// in-shard closures, cross-shard probes and spilled increments
    /// included.
    #[test]
    fn outofcore_supports_match_inmemory(g in arb_graph(48, 400)) {
        let expected = edge_supports(&g);
        for shards in SHARD_COUNTS {
            let got = outofcore_supports(&g, shards, 4096, 1);
            prop_assert_eq!(&got, &expected, "shards = {}", shards);
        }
    }

    /// The shard-parallel support pass is exact at every worker width:
    /// per-worker spill-bucket sets and window sub-accountants commute
    /// with the serial result regardless of which worker claims which
    /// shard from the cursor.
    #[test]
    fn parallel_supports_match_serial(g in arb_graph(48, 400)) {
        let expected = edge_supports(&g);
        for threads in [2usize, 4] {
            let got = outofcore_supports(&g, 5, 4096, threads);
            prop_assert_eq!(&got, &expected, "threads = {}", threads);
        }
    }

    /// `Window::partition` never hands out more aggregate budget than the
    /// parent enforces: `Σ sub-budgets + pinned ≤ budget`, except where
    /// the documented one-page floor per sub-window already exceeds the
    /// parent's (unenforceably small) share.
    #[test]
    fn window_partition_respects_global_budget(
        budget in 1usize..1 << 24,
        parts in 1usize..16,
    ) {
        const PAGE: usize = 4096;
        let parent = Window::new(budget, false);
        let subs = parent.partition(parts);
        prop_assert_eq!(subs.len(), parts);
        let total: usize = subs.iter().map(Window::budget).sum();
        let enforced = parent.budget(); // `new` floors the parent at one page too
        if enforced / parts >= PAGE {
            prop_assert!(
                total <= enforced,
                "sum of sub-budgets {} exceeds parent budget {}",
                total, enforced
            );
        } else {
            // Below a page per worker the floor takes over; the overshoot
            // is bounded by one page per sub-window.
            prop_assert!(total <= parts * PAGE);
        }
    }

    /// Full out-of-core decomposition equals the in-memory reference on
    /// random ER graphs, for every shard count under an adversarially tiny
    /// budget (clamped up to the engine's minimum internally).
    #[test]
    fn outofcore_decomposition_matches_inmemory(g in arb_graph(40, 300)) {
        let expected = truss_decompose(&g);
        let scratch = ScratchDir::new().unwrap();
        for shards in SHARD_COUNTS {
            let cfg = OutOfCoreConfig::with_shards(IoConfig::with_budget(1), shards);
            let (d, _) = outofcore_decompose_in(&g, &cfg, &scratch).unwrap();
            prop_assert_eq!(d.trussness(), expected.trussness(), "shards = {}", shards);
        }
    }

    /// Same on R-MAT graphs: the skewed degree distribution concentrates
    /// edges into few shards (some end up empty) and stresses the
    /// oversized-window path for hub rows.
    #[test]
    fn outofcore_matches_inmemory_on_rmat(seed in 0u64..1u64 << 32) {
        let g = rmat(RmatConfig::skewed(7, 900), seed);
        let expected = truss_decompose(&g);
        let expected_sup = edge_supports(&g);
        let scratch = ScratchDir::new().unwrap();
        for shards in SHARD_COUNTS {
            let got = outofcore_supports(&g, shards, 4096, 1);
            prop_assert_eq!(&got, &expected_sup, "supports, shards = {}", shards);
            let cfg = OutOfCoreConfig::with_shards(IoConfig::with_budget(1), shards);
            let (d, _) = outofcore_decompose_in(&g, &cfg, &scratch).unwrap();
            prop_assert_eq!(d.trussness(), expected.trussness(), "shards = {}", shards);
        }
    }
}

//! Crash-recovery kill-matrix for the WAL-backed daemon.
//!
//! Each run arms one failpoint (`TRUSS_FAILPOINTS`) in a child daemon,
//! streams updates at it until the injected crash, restarts over the
//! same snapshot + log, and checks the recovered index against a
//! from-scratch replay: every *acknowledged* update survives, an
//! unacknowledged one is wholly absent or wholly present (its record
//! made the page cache before the abort) but never partial — the
//! recovered checksum must sit exactly on the precomputed generation
//! ladder. `--compact-bytes 1` forces a compaction after every commit,
//! so the compaction sites fire on a live log, not a synthetic one.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use truss_decomposition::core::index::TrussIndex;
use truss_decomposition::graph::generators::gnm;
use truss_decomposition::graph::{CsrGraph, Edge, EdgeDelta};
use truss_decomposition::serve::proto::{StatusSummary, GENERATION_ANY};
use truss_decomposition::serve::server::index_checksum;
use truss_decomposition::serve::{Client, Request, Response};

const BATCHES: usize = 6;

fn truss_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_truss"))
}

fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("truss-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn connect_retry(addr: &str) -> Client {
    for _ in 0..200 {
        if let Ok(c) = Client::connect(addr) {
            return c;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("could not connect to {addr}");
}

/// Batch `i` inserts a 6-clique on fresh vertices and removes a disjoint
/// slice of base edges — the same order-insensitive stream the serve
/// hammer uses, so generation `g` is *defined* as base + deltas[..g].
fn delta_stream(base: &CsrGraph, batches: usize) -> Vec<EdgeDelta> {
    let base_edges: Vec<Edge> = base.iter_edges().map(|(_, e)| e).collect();
    (0..batches)
        .map(|i| {
            let lo = (300 + 10 * i) as u32;
            let mut insert = Vec::new();
            for a in lo..lo + 6 {
                for b in a + 1..lo + 6 {
                    insert.push(Edge::new(a, b));
                }
            }
            EdgeDelta {
                insert,
                remove: base_edges[30 * i..30 * i + 4].to_vec(),
            }
        })
        .collect()
}

/// The ladder of expected states: `checksums[g]` is the v2 container
/// checksum of base + deltas[..g], computed without any daemon involved.
fn expected_checksums(base: &TrussIndex, deltas: &[EdgeDelta]) -> Vec<u64> {
    let mut state = base.clone();
    let mut checksums = vec![index_checksum(&state).unwrap()];
    for d in deltas {
        state.apply(d);
        checksums.push(index_checksum(&state).unwrap());
    }
    checksums
}

fn spawn_serve(index: &Path, wal: &Path, port: u16, failpoints: Option<&str>) -> Child {
    let mut cmd = truss_bin();
    cmd.args(["serve", "--port", &port.to_string(), "--threads", "2"])
        .args(["--wal", wal.to_str().unwrap(), "--compact-bytes", "1"])
        .arg(index)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(spec) = failpoints {
        cmd.env("TRUSS_FAILPOINTS", spec);
    }
    cmd.spawn().unwrap()
}

fn remote_status(client: &mut Client) -> (u64, u64, StatusSummary) {
    let reply = client.request(&Request::Status).unwrap();
    match reply.body.unwrap() {
        Response::Status(s) => (reply.generation, reply.checksum, s),
        other => panic!("expected Status, got {other:?}"),
    }
}

/// Streams `deltas` one batch at a time until the daemon dies, returning
/// the highest acknowledged generation and how many batches were sent.
fn stream_until_crash(client: &mut Client, deltas: &[EdgeDelta]) -> (u64, usize) {
    let mut acked = 0u64;
    let mut sent = 0usize;
    for d in deltas {
        sent += 1;
        match client.request(&Request::Update {
            base_generation: GENERATION_ANY,
            delta: d.clone(),
        }) {
            Ok(reply) if reply.body.is_ok() => acked = reply.generation,
            // A server-side error (poisoned writer) or a transport error
            // (the abort): either way nothing later can be acked.
            _ => break,
        }
    }
    (acked, sent)
}

/// One kill-matrix run: arm `spec`, stream until the crash, restart
/// clean, and assert the recovered daemon sits on the expected ladder.
/// Returns the recovery stats of the restarted daemon for site-specific
/// assertions.
fn run_site(tag: &str, spec: &str, expect_abort: bool) -> StatusSummary {
    let dir = temp_dir(tag);
    let snapshot = dir.join("idx.t2");
    let wal = dir.join("idx.log");

    let base_graph = gnm(200, 900, 0xDEAD + tag.len() as u64);
    let base = TrussIndex::from_decompose(base_graph.clone());
    let deltas = delta_stream(&base_graph, BATCHES);
    let checksums = expected_checksums(&base, &deltas);
    base.save(&snapshot).unwrap();

    let port = free_port();
    let mut child = spawn_serve(&snapshot, &wal, port, Some(spec));
    let mut client = connect_retry(&format!("127.0.0.1:{port}"));
    let (acked, sent) = stream_until_crash(&mut client, &deltas);
    drop(client);
    if expect_abort {
        let status = child.wait().unwrap();
        assert!(!status.success(), "{spec}: daemon must abort, got {status}");
    } else {
        // Poisoned, not dead: reads still work, then kill it hard.
        let mut client = connect_retry(&format!("127.0.0.1:{port}"));
        let (_, _, s) = remote_status(&mut client);
        assert!(s.wal_poisoned, "{spec}: writer must be poisoned");
        assert!(
            client.request(&Request::Spectrum).unwrap().body.is_ok(),
            "{spec}: reads must survive a poisoned writer"
        );
        kill9(&mut child);
    }

    // Restart with no failpoints over whatever the crash left behind.
    let port = free_port();
    let mut child = spawn_serve(&snapshot, &wal, port, None);
    let mut client = connect_retry(&format!("127.0.0.1:{port}"));
    let (gen, checksum, stats) = remote_status(&mut client);
    assert!(
        acked <= gen && gen <= sent as u64,
        "{spec}: acked {acked} <= recovered {gen} <= sent {sent} violated"
    );
    assert_eq!(
        checksum, checksums[gen as usize],
        "{spec}: recovered generation {gen} is not the replay-defined state"
    );
    assert!(
        client.request(&Request::Spectrum).unwrap().body.is_ok(),
        "{spec}: recovered daemon must serve reads"
    );

    // The recovered daemon must also still be writable: apply the next
    // delta in the stream and land exactly on the next ladder rung.
    if (gen as usize) < deltas.len() {
        let reply = client
            .request(&Request::Update {
                base_generation: gen,
                delta: deltas[gen as usize].clone(),
            })
            .unwrap();
        assert!(reply.body.is_ok(), "{spec}: post-recovery update failed");
        assert_eq!(
            (reply.generation, reply.checksum),
            (gen + 1, checksums[gen as usize + 1]),
            "{spec}: post-recovery update diverged from the ladder"
        );
    }
    let _ = client.request(&Request::Shutdown);
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
    stats
}

fn kill9(child: &mut Child) {
    let _ = child.kill();
    let _ = child.wait();
}

/// Crash sites in the append/ack path. `@2` arms mid-stream so at least
/// one batch is acknowledged (and, with `--compact-bytes 1`, at least
/// one full compaction has rewritten the snapshot) before the kill.
#[test]
fn kill_matrix_append_path() {
    for spec in [
        "wal-append=crash",
        "wal-append=crash@2",
        "wal-fsync=crash",
        "wal-fsync=crash@3",
    ] {
        run_site("append", spec, true);
    }
}

/// A torn record: the append writes a 7-byte prefix of the frame and
/// aborts. Recovery must truncate the tail (counted in the stats) and
/// serve the acknowledged prefix.
#[test]
fn kill_matrix_torn_append() {
    let stats = run_site("torn", "wal-append=short:7@2", true);
    assert!(
        stats.recovery_bytes_truncated > 0,
        "a short append must leave a torn tail for recovery to drop: {stats:?}"
    );
}

/// Crash sites inside compaction. Compaction runs after the ack, so the
/// recovered generation must cover every acknowledged batch no matter
/// where in temp-write → fsync → intent-append → rename → dir-fsync →
/// log-reset the process dies.
#[test]
fn kill_matrix_compaction_path() {
    for spec in [
        "compact-temp-write=crash",
        "compact-fsync=crash@2",
        "compact-before-rename=crash",
        "compact-before-rename=crash@3",
        "compact-after-rename=crash",
        "compact-after-rename=crash@2",
        "compact-before-dirsync=crash",
        "wal-reset-temp-write=crash",
        "wal-reset-before-rename=crash@2",
        "wal-reset-after-rename=crash",
    ] {
        run_site("compact", spec, true);
    }
}

/// An fsync `EIO` must fail the in-flight update, poison the writer
/// (fail-stop: no later update can be acked against a log of unknown
/// durability), and keep serving reads until restart.
#[test]
fn fsync_eio_poisons_the_writer_but_reads_survive() {
    run_site("eio", "wal-fsync=eio@2", false);
}

//! End-to-end tests of the serving layer: a concurrency hammer over an
//! in-process daemon, crash-injection around snapshot rotation, and the
//! golden local-vs-remote CLI output comparison.

use std::collections::BTreeSet;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;
use truss_decomposition::core::index::{IndexFormat, TrussIndex};
use truss_decomposition::graph::generators::gnm;
use truss_decomposition::graph::{CsrGraph, Edge, EdgeDelta};
use truss_decomposition::serve::proto::GENERATION_ANY;
use truss_decomposition::serve::server::index_checksum;
use truss_decomposition::serve::{answer, Client, Request, Response, ServeConfig, Server};

/// Connects with retries — the peer may still be binding its listener.
fn connect_retry(addr: &str) -> Client {
    for _ in 0..200 {
        if let Ok(c) = Client::connect(addr) {
            return c;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("could not connect to {addr}");
}

/// The delta stream the writer applies: batch `i` inserts a 6-clique on
/// vertices `[60i, 60i + 6)` (dense new structure, raises trussness) and
/// removes a disjoint slice of the base graph's edges.
fn delta_stream(base: &CsrGraph, batches: usize) -> Vec<EdgeDelta> {
    let base_edges: Vec<Edge> = base.iter_edges().map(|(_, e)| e).collect();
    (0..batches)
        .map(|i| {
            let lo = (60 * i) as u32;
            let mut insert = Vec::new();
            for a in lo..lo + 6 {
                for b in a + 1..lo + 6 {
                    insert.push(Edge::new(a, b));
                }
            }
            let remove = base_edges[40 * i..40 * i + 5].to_vec();
            // Inserting an edge another batch removes (or vice versa)
            // would make "expected" order-sensitive; keep them disjoint.
            let removed: BTreeSet<Edge> = remove.iter().copied().collect();
            insert.retain(|e| !removed.contains(e));
            EdgeDelta { insert, remove }
        })
        .collect()
}

/// The tentpole concurrency test: 16 client threads hammer mixed read
/// queries while a writer applies a delta stream through the daemon.
/// Every reply must be internally consistent — its generation's checksum
/// and its payload must match the index that generation is defined to be
/// — and the final generation must equal a from-scratch decomposition.
#[test]
fn sixteen_clients_hammer_while_writer_rotates() {
    const CLIENTS: usize = 16;
    const BATCHES: usize = 5;
    const QUERIES_PER_CLIENT: usize = 24;

    let base = gnm(240, 1100, 0xC0FFEE);
    let deltas = delta_stream(&base, BATCHES);

    // Generation g is *defined* as the base index with deltas[..g]
    // applied in order; precompute each state and its checksum.
    let mut expected: Vec<Arc<TrussIndex>> =
        vec![Arc::new(TrussIndex::from_decompose(base.clone()))];
    for d in &deltas {
        let mut next = (**expected.last().unwrap()).clone();
        next.apply(d);
        expected.push(Arc::new(next));
    }
    let checksums: Arc<Vec<u64>> = Arc::new(
        expected
            .iter()
            .map(|ix| index_checksum(ix).unwrap())
            .collect(),
    );
    let expected = Arc::new(expected);

    let handle = Server::start(
        (*expected[0]).clone(),
        checksums[0],
        "127.0.0.1:0",
        ServeConfig {
            threads: CLIENTS + 1,
            snapshot_path: None,
            wal: None,
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    let mut clients = Vec::new();
    for t in 0..CLIENTS {
        let addr = addr.clone();
        let expected = Arc::clone(&expected);
        let checksums = Arc::clone(&checksums);
        clients.push(std::thread::spawn(move || {
            let mut client = connect_retry(&addr);
            for i in 0..QUERIES_PER_CLIENT {
                let req = match (t + i) % 5 {
                    0 => Request::Spectrum,
                    1 => Request::KTruss { k: 3 },
                    2 => Request::Communities { k: 3 },
                    // An edge the first batch inserts: not an edge at
                    // generation 0, trussness 7 once the clique lands.
                    3 => Request::Edge { u: 0, v: 1 },
                    _ => Request::CommunityOf { v: 61, k: 4 },
                };
                let reply = client.request(&req).unwrap();
                let gen = reply.generation as usize;
                assert!(gen < expected.len(), "generation {gen} out of range");
                // Identity coherence: the checksum must be the one this
                // generation was precomputed to have...
                assert_eq!(
                    reply.checksum, checksums[gen],
                    "client {t}, query {i}: checksum mismatch at generation {gen}"
                );
                // ...and the payload must be the one this generation's
                // index gives — even while the writer swaps generations.
                assert_eq!(
                    reply.body,
                    answer(&expected[gen], &req),
                    "client {t}, query {i}: payload mismatch at generation {gen}"
                );
            }
        }));
    }

    let writer = {
        let addr = addr.clone();
        let checksums = Arc::clone(&checksums);
        let deltas = deltas.clone();
        std::thread::spawn(move || {
            let mut client = connect_retry(&addr);
            for (i, d) in deltas.iter().enumerate() {
                std::thread::sleep(Duration::from_millis(15));
                let reply = client
                    .request(&Request::Update {
                        base_generation: GENERATION_ANY,
                        delta: d.clone(),
                    })
                    .unwrap();
                assert_eq!(reply.generation, i as u64 + 1);
                assert_eq!(reply.checksum, checksums[i + 1]);
                match reply.body.unwrap() {
                    Response::Update(s) => assert!(!s.rotated, "no snapshot path configured"),
                    other => panic!("{other:?}"),
                }
            }
        })
    };

    for c in clients {
        c.join().unwrap();
    }
    writer.join().unwrap();

    // Final state == a from-scratch decomposition of the final graph.
    let mut edges: BTreeSet<Edge> = base.iter_edges().map(|(_, e)| e).collect();
    for d in &deltas {
        edges.extend(d.insert.iter().copied());
        for e in &d.remove {
            edges.remove(e);
        }
    }
    let scratch = TrussIndex::from_decompose(CsrGraph::from_edges(edges.iter().copied()));
    let mut client = connect_retry(&addr);
    let (gen, checksum) = handle.generation();
    assert_eq!(gen, BATCHES as u64);
    assert_eq!(checksum, checksums[BATCHES]);
    let spectrum = client.request(&Request::Spectrum).unwrap();
    assert_eq!(spectrum.generation, BATCHES as u64);
    match spectrum.body.unwrap() {
        Response::Spectrum(s) => assert_eq!(s, scratch.spectrum()),
        other => panic!("{other:?}"),
    }
    for k in 2..=scratch.max_k() {
        match client
            .request(&Request::KTruss { k })
            .unwrap()
            .body
            .unwrap()
        {
            Response::KTruss { edges, .. } => {
                assert_eq!(edges, scratch.k_truss_edges(k), "k = {k}");
            }
            other => panic!("{other:?}"),
        }
    }
    drop(client);
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Rotation fault injection (child-process harness)

fn truss_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_truss"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("truss-serve-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds and saves a small v2 index, returning its path.
fn saved_index(dir: &Path) -> PathBuf {
    let path = dir.join("serve.t2");
    let index = TrussIndex::from_decompose(gnm(120, 500, 42));
    index.save_as(&path, IndexFormat::V2).unwrap();
    path
}

/// A free port for a child daemon (bind-and-release; raceable in theory,
/// fine for a test that retries its connects).
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

fn spawn_serve(index: &Path, port: u16, failpoints: Option<&str>) -> Child {
    let mut cmd = truss_bin();
    cmd.args(["serve", "--port", &port.to_string(), "--threads", "2"])
        .arg(index)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(spec) = failpoints {
        cmd.env("TRUSS_FAILPOINTS", spec);
    }
    cmd.spawn().unwrap()
}

fn one_clique_delta() -> EdgeDelta {
    let mut insert = Vec::new();
    for a in 0u32..5 {
        for b in a + 1..5 {
            insert.push(Edge::new(a, b));
        }
    }
    EdgeDelta {
        insert,
        remove: Vec::new(),
    }
}

/// Killing the daemon after the new snapshot is written but *before* the
/// rename must leave the old snapshot untouched, valid, and servable.
#[test]
fn crash_before_rename_preserves_the_old_snapshot() {
    let dir = temp_dir("crash-before");
    let path = saved_index(&dir);
    let before = truss_decomposition::storage::snapshot_checksum(&path).unwrap();

    let port = free_port();
    let mut child = spawn_serve(&path, port, Some("rotate-before-rename=crash"));
    let mut client = connect_retry(&format!("127.0.0.1:{port}"));
    // The update reaches the abort() before any reply: the transport
    // must fail, not hang.
    let res = client.request(&Request::Update {
        base_generation: GENERATION_ANY,
        delta: one_clique_delta(),
    });
    assert!(res.is_err(), "server aborted; got {res:?}");
    let status = child.wait().unwrap();
    assert!(!status.success(), "the crash hook must abort the daemon");

    // Old snapshot: byte-identical, still opens, still answers.
    assert_eq!(
        truss_decomposition::storage::snapshot_checksum(&path).unwrap(),
        before
    );
    let (index, format) =
        TrussIndex::load_with(&path, truss_decomposition::storage::LoadMode::Auto).unwrap();
    assert_eq!(format, IndexFormat::V2);
    assert!(answer(&index, &Request::Spectrum).is_ok());

    // And a fresh daemon serves it at generation 0 with its checksum.
    let port = free_port();
    let mut child = spawn_serve(&path, port, None);
    let mut client = connect_retry(&format!("127.0.0.1:{port}"));
    let reply = client.request(&Request::Status).unwrap();
    assert_eq!((reply.generation, reply.checksum), (0, before));
    let _ = client.request(&Request::Shutdown);
    assert!(child.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Killing the daemon right *after* the rename must leave the *new*
/// snapshot in place — the rename is the commit point.
#[test]
fn crash_after_rename_commits_the_new_snapshot() {
    let dir = temp_dir("crash-after");
    let path = saved_index(&dir);
    let before = truss_decomposition::storage::snapshot_checksum(&path).unwrap();

    // What the rotation should commit: the same delta applied locally.
    let (mut upd, _) =
        TrussIndex::load_with(&path, truss_decomposition::storage::LoadMode::Auto).unwrap();
    upd.apply(&one_clique_delta());
    let after = index_checksum(&upd).unwrap();
    assert_ne!(before, after);

    let port = free_port();
    let mut child = spawn_serve(&path, port, Some("rotate-after-rename=crash"));
    let mut client = connect_retry(&format!("127.0.0.1:{port}"));
    let res = client.request(&Request::Update {
        base_generation: GENERATION_ANY,
        delta: one_clique_delta(),
    });
    assert!(res.is_err(), "server aborted; got {res:?}");
    assert!(!child.wait().unwrap().success());

    assert_eq!(
        truss_decomposition::storage::snapshot_checksum(&path).unwrap(),
        after,
        "the renamed snapshot is the committed state"
    );
    let (index, _) =
        TrussIndex::load_with(&path, truss_decomposition::storage::LoadMode::Auto).unwrap();
    assert_eq!(index.truss_of(0, 1), upd.truss_of(0, 1));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Golden local-vs-remote CLI output

/// `truss query` against the local file and against `--remote` must
/// produce byte-identical stdout (they share one evaluation path and one
/// formatter); the legacy `truss index query` must agree too.
#[test]
fn local_and_remote_query_stdout_is_byte_identical() {
    let dir = temp_dir("golden");
    let path = saved_index(&dir);
    let path_s = path.to_str().unwrap();

    let port = free_port();
    let mut child = spawn_serve(&path, port, None);
    // Wait for readiness before racing CLI queries against the bind.
    drop(connect_retry(&format!("127.0.0.1:{port}")));
    let remote = format!("127.0.0.1:{port}");

    // One present edge to query, straight from the index.
    let (index, _) =
        TrussIndex::load_with(&path, truss_decomposition::storage::LoadMode::Auto).unwrap();
    let e = index.k_truss_edges(2)[0];
    let (u, v) = (e.u.to_string(), e.v.to_string());

    let cases: Vec<Vec<&str>> = vec![
        vec!["--query", "spectrum"],
        vec!["--query", "ktruss", "--k", "3"],
        vec!["--query", "communities", "--k", "3"],
        vec!["--query", "edge", "--u", &u, "--v", &v],
        vec!["--query", "community-of", "--v", &u, "--k", "3"],
    ];
    for case in &cases {
        let local = truss_bin()
            .arg("query")
            .args(case)
            .arg(path_s)
            .output()
            .unwrap();
        assert!(local.status.success(), "local {case:?}: {local:?}");
        let remote_out = truss_bin()
            .arg("query")
            .args(["--remote", &remote])
            .args(case)
            .output()
            .unwrap();
        assert!(
            remote_out.status.success(),
            "remote {case:?}: {remote_out:?}"
        );
        assert_eq!(
            local.stdout, remote_out.stdout,
            "stdout differs for {case:?}"
        );
        // The legacy surface serves the same four query kinds.
        if case[1] != "community-of" {
            let legacy = truss_bin()
                .args(["index", "query"])
                .args(case)
                .arg(path_s)
                .output()
                .unwrap();
            assert!(legacy.status.success(), "legacy {case:?}: {legacy:?}");
            assert_eq!(local.stdout, legacy.stdout, "legacy differs for {case:?}");
        }
    }

    // Remote graceful shutdown: the daemon must exit 0.
    let mut client = connect_retry(&remote);
    let reply = client.request(&Request::Shutdown).unwrap();
    assert!(matches!(reply.body, Ok(Response::ShuttingDown)));
    assert!(child.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&dir);
}

//! Offline stand-in for the `criterion` crate, providing the API surface
//! this workspace's benches use: [`Criterion::benchmark_group`], group
//! configuration (`sample_size` / `warm_up_time` / `measurement_time`),
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`, [`BenchmarkId`],
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Two modes:
//! * **quick** (default, what `cargo test` would hit): every benchmark body
//!   runs once, so benches double as smoke tests without measurement noise.
//! * **measured** (`--bench` on the command line, passed by `cargo bench`):
//!   warm-up followed by timed batches; mean per-iteration time is printed.

use std::fmt::Display;
use std::hint::black_box as bb;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    bb(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    measured: bool,
}

impl Default for Criterion {
    /// Measured mode iff `--bench` is on the command line (`cargo bench`
    /// passes it; plain execution and `cargo test` do not).
    fn default() -> Self {
        Criterion {
            measured: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let group = self.benchmark_group(name);
        let mut b = Bencher {
            measured: group.criterion.measured,
            sample_size: group.sample_size,
            warm_up_time: group.warm_up_time,
            measurement_time: group.measurement_time,
            label: name.to_string(),
        };
        f(&mut b);
        group.finish();
    }
}

/// A `group/function/parameter` benchmark label.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Label `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (measured mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measurement (measured mode).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement duration target (measured mode).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.bencher(&id.id);
        f(&mut b, input);
        self
    }

    /// Benchmarks a closure without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.bencher(&id.id);
        f(&mut b);
        self
    }

    fn bencher(&self, id: &str) -> Bencher {
        Bencher {
            measured: self.criterion.measured,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            label: format!("{}/{}", self.name, id),
        }
    }

    /// Ends the group (report separator in measured mode).
    pub fn finish(self) {
        if self.criterion.measured {
            println!();
        }
    }
}

/// Timing harness handed to each benchmark body.
pub struct Bencher {
    measured: bool,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    label: String,
}

impl Bencher {
    /// Runs the routine: once in quick mode, warm-up + timed samples in
    /// measured mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.measured {
            bb(routine());
            return;
        }
        // Warm-up, also estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            bb(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters_per_sample = ((self.measurement_time.as_secs_f64() / self.sample_size as f64)
            / per_iter.max(1e-9))
        .max(1.0) as u64;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                bb(routine());
            }
            total += start.elapsed();
            iters += iters_per_sample;
        }
        let mean = total.as_secs_f64() / iters.max(1) as f64;
        println!("{:<60} {:>12}  ({iters} iters)", self.label, humanize(mean));
    }
}

fn humanize(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_bodies_once() {
        let mut c = Criterion { measured: false };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(10).warm_up_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::new("f", 1), &3u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            });
        });
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn humanize_units() {
        assert!(humanize(2.0).ends_with(" s"));
        assert!(humanize(2e-3).ends_with(" ms"));
        assert!(humanize(2e-6).ends_with(" µs"));
        assert!(humanize(2e-9).ends_with(" ns"));
    }
}

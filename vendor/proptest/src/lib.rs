//! Offline stand-in for the `proptest` crate, providing the API surface
//! this workspace's property tests use: the [`proptest!`] macro (with
//! `#![proptest_config(...)]`), [`prop_assert!`] / [`prop_assert_eq!`],
//! [`Strategy`] with `prop_map` / `prop_filter_map`, integer-range and
//! tuple strategies, and [`prop::collection::vec`].
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with the generated values unreduced) and a fixed per-test seed derived
//! from the test name, so failures reproduce deterministically.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Test-loop configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test body runs on.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Per-test driver: the RNG values are drawn from.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Deterministic runner; the seed is derived from the test name.
    pub fn new(_config: &ProptestConfig, name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn usize_in(&mut self, range: Range<usize>) -> usize {
        if range.start + 1 >= range.end {
            return range.start;
        }
        self.rng.gen_range(range)
    }
}

/// A generator of values for one test argument.
///
/// `new_value` returns `None` when a filter rejected the draw; the test
/// loop retries (bounded) instead of counting the case.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn new_value(&self, runner: &mut TestRunner) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Maps through `f`, rejecting draws where `f` returns `None`.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        _whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f }
    }

    /// Rejects draws failing the predicate.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> Option<O> {
        self.inner.new_value(runner).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> Option<O> {
        self.inner.new_value(runner).and_then(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, runner: &mut TestRunner) -> Option<S::Value> {
        self.inner.new_value(runner).filter(|v| (self.f)(v))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> Option<$t> {
                assert!(self.start < self.end, "strategy on empty range");
                let span = (self.end - self.start) as u64;
                Some(self.start + (runner.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, runner: &mut TestRunner) -> Option<Self::Value> {
                Some(($(self.$idx.new_value(runner)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRunner};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths in `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Option<Vec<S::Value>> {
            let len = runner.usize_in(self.size.clone());
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                // Retry filtered elements locally so sparse filters don't
                // reject whole vectors.
                let mut attempts = 0;
                loop {
                    if let Some(v) = self.element.new_value(runner) {
                        out.push(v);
                        break;
                    }
                    attempts += 1;
                    if attempts > 1000 {
                        return None;
                    }
                }
            }
            Some(out)
        }
    }
}

/// Namespace mirror of real proptest's `prop::` paths.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! One-stop import for property tests.

    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Declares property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(&config, stringify!($name));
            let strategy = ( $($strat,)+ );
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(200).saturating_add(10_000),
                    "proptest shim: too many rejected draws in {}",
                    stringify!($name),
                );
                let Some(($($arg,)+)) = $crate::Strategy::new_value(&strategy, &mut runner)
                else {
                    continue;
                };
                accepted += 1;
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let cfg = ProptestConfig::with_cases(10);
        let mut runner = crate::TestRunner::new(&cfg, "bounds");
        let strat = (3u32..9, 0usize..5);
        for _ in 0..200 {
            let (a, b) = Strategy::new_value(&strat, &mut runner).unwrap();
            assert!((3..9).contains(&a));
            assert!(b < 5);
        }
    }

    #[test]
    fn filter_map_rejects() {
        let cfg = ProptestConfig::default();
        let mut runner = crate::TestRunner::new(&cfg, "fm");
        let strat = (0u32..2).prop_filter_map("odd only", |x| (x == 1).then_some(x));
        let mut saw_reject = false;
        let mut saw_accept = false;
        for _ in 0..100 {
            match Strategy::new_value(&strat, &mut runner) {
                Some(v) => {
                    assert_eq!(v, 1);
                    saw_accept = true;
                }
                None => saw_reject = true,
            }
        }
        assert!(saw_accept && saw_reject);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: vec sizes and mapped values respect bounds.
        #[test]
        fn macro_roundtrip(v in prop::collection::vec(0u32..10, 1..20), x in 5u8..6) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert_eq!(x, 5);
        }
    }
}

//! Offline stand-in for the `rand` crate (0.8-era API), providing only the
//! surface this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! `gen`/`gen_range`/`gen_bool`, and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256\*\* with splitmix64 seed expansion —
//! deterministic and portable, but a *different stream* from the real
//! `StdRng` (ChaCha12). See `vendor/README.md`.

use std::ops::Range;

/// Core source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// Deterministic xoshiro256\*\* generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the recommended seeding for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly from their "standard" distribution
/// (`Rng::gen`): `[0, 1)` for floats, full range for integers.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open range (`Rng::gen_range`).
pub trait UniformSampled: Sized {
    /// Draws one value from `range`; panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end - range.start) as u64;
                // Debiased multiply-shift (Lemire).
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return range.start + (x % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl UniformSampled for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let x = f64::sample(rng);
        range.start + x * (range.end - range.start)
    }
}

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T: UniformSampled>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related random operations.

    use crate::{RngCore, UniformSampled};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng, 0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800 && c < 1200), "{counts:?}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        let mut r = StdRng::seed_from_u64(9);
        v.shuffle(&mut r);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert!(orig.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
